//! Fleet-aware clients: a thin [`RegistryClient`] speaking the registry
//! protocol, and the full [`FleetClient`] that resolves, routes, fails
//! over, and version-checks every response.
//!
//! Routing is deterministic: the FNV hash of the source text picks the
//! starting node in proportion to advertised weights, so the same loop
//! nest lands on the same node while it stays alive — which keeps that
//! node's decision cache hot. When a node dies mid-request the client
//! walks the remaining peers (freshest first, with backoff), and when
//! the *registry* dies the last-known-good node set keeps serving
//! (stale-while-down).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nvc_serve::json::obj;
use nvc_serve::Json;

use crate::registry::{NodeAnnouncement, ResolvedNode};
use crate::FleetError;

/// A line-oriented JSON connection to one registry, reconnecting on
/// error.
pub struct RegistryClient {
    addr: String,
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

impl RegistryClient {
    /// A client for the registry at `addr` (connects lazily).
    pub fn new(addr: impl Into<String>) -> Self {
        RegistryClient {
            addr: addr.into(),
            conn: Mutex::new(None),
        }
    }

    /// The registry address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One request/response. Reconnects once if the cached connection
    /// has gone stale.
    pub fn request(&self, body: &Json) -> Result<Json, String> {
        let line = body.render();
        let mut guard = self.conn.lock();
        for attempt in 0..2 {
            if guard.is_none() {
                let stream = TcpStream::connect(&self.addr).map_err(|e| e.to_string())?;
                let _ = stream.set_nodelay(true);
                *guard = Some(BufReader::new(stream));
            }
            let conn = guard.as_mut().expect("connection just ensured");
            let io = conn
                .get_mut()
                .write_all(line.as_bytes())
                .and_then(|()| conn.get_mut().write_all(b"\n"))
                .and_then(|()| conn.get_mut().flush())
                .and_then(|()| {
                    let mut response = String::new();
                    conn.read_line(&mut response).map(|n| (n, response))
                });
            match io {
                Ok((0, _)) | Err(_) if attempt == 0 => {
                    // Stale connection (registry restarted, idle
                    // timeout): drop it and retry once on a fresh one.
                    *guard = None;
                    continue;
                }
                Ok((0, _)) => return Err("registry closed the connection".to_string()),
                Err(e) => return Err(e.to_string()),
                Ok((_, response)) => {
                    return Json::parse(response.trim()).map_err(|e| format!("bad response: {e}"))
                }
            }
        }
        unreachable!("two attempts always return")
    }

    /// Sends one announcement heartbeat.
    pub fn announce(&self, ann: &NodeAnnouncement) -> Result<usize, String> {
        let v = self.request(&ann.to_json())?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("announce rejected")
                .to_string());
        }
        Ok(v.get("nodes").and_then(Json::as_f64).unwrap_or(0.0) as usize)
    }

    /// Resolves the live nodes serving `model` (or all nodes).
    pub fn resolve(&self, model: Option<&str>) -> Result<Vec<ResolvedNode>, String> {
        let mut fields = vec![("op", Json::from("resolve"))];
        if let Some(m) = model {
            fields.push(("model", Json::from(m)));
        }
        let v = self.request(&obj(fields))?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err("resolve rejected".to_string());
        }
        let mut nodes = Vec::new();
        for n in v.get("nodes").and_then(Json::as_array).unwrap_or(&[]) {
            nodes.push(ResolvedNode::from_json(n)?);
        }
        Ok(nodes)
    }

    /// Asks the registry to shut down.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request(&obj(vec![("op", Json::from("shutdown"))]))
            .map(|_| ())
    }
}

/// Knobs for a [`FleetClient`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Registry address (`host:port`).
    pub registry: String,
    /// Model to request; `None` lets each hub apply its own A/B split.
    pub model: Option<String>,
    /// How many peers to try per request before giving up.
    pub retries: usize,
    /// Sleep between failover attempts.
    pub backoff_ms: u64,
    /// How long a resolution stays fresh before re-asking the registry.
    pub resolve_ttl_ms: u64,
}

impl FleetConfig {
    /// Sensible defaults against `registry` (3 attempts, 50 ms backoff,
    /// 2 s resolve freshness).
    pub fn new(registry: impl Into<String>) -> Self {
        FleetConfig {
            registry: registry.into(),
            model: None,
            retries: 3,
            backoff_ms: 50,
            resolve_ttl_ms: 2000,
        }
    }

    /// Pins requests to one model (enables version verification against
    /// that model's advertised hash).
    pub fn with_model(mut self, model: impl Into<String>) -> Self {
        self.model = Some(model.into());
        self
    }

    /// Overrides the per-request attempt budget.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Overrides the failover backoff.
    pub fn with_backoff_ms(mut self, ms: u64) -> Self {
        self.backoff_ms = ms;
        self
    }

    /// Overrides how long a resolution is trusted without refreshing.
    pub fn with_resolve_ttl_ms(mut self, ms: u64) -> Self {
        self.resolve_ttl_ms = ms;
        self
    }
}

/// One vectorization answered by the fleet.
#[derive(Debug, Clone)]
pub struct FleetResponse {
    /// The model that decided (hub-side registry name).
    pub model: String,
    /// The node that answered.
    pub node: String,
    /// The checkpoint content hash stamped on the response — already
    /// verified against the registry's advertisement.
    pub checkpoint_hash: u64,
    /// The pragma-annotated source.
    pub source: String,
    /// Per-loop decisions as returned by the hub.
    pub loops: Json,
    /// Server-side latency for the decision.
    pub latency_us: u64,
}

/// Counters a [`FleetClient`] keeps about its own behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests attempted.
    pub requests: u64,
    /// Requests that succeeded (possibly after failover).
    pub ok: u64,
    /// Node-level failovers (connect/IO/protocol failure on a peer).
    pub failovers: u64,
    /// Requests served from a stale node set because the registry was
    /// unreachable.
    pub registry_failovers: u64,
    /// Responses rejected because the checkpoint hash did not match the
    /// (re-confirmed) advertisement.
    pub version_mismatches: u64,
    /// Successful registry resolutions.
    pub resolves: u64,
}

#[derive(Default)]
struct StatCells {
    requests: AtomicU64,
    ok: AtomicU64,
    failovers: AtomicU64,
    registry_failovers: AtomicU64,
    version_mismatches: AtomicU64,
    resolves: AtomicU64,
}

/// Resolve → weighted pick → verify → fail over. See the module docs.
pub struct FleetClient {
    cfg: FleetConfig,
    registry: RegistryClient,
    /// Last successful resolution and when it happened.
    nodes: Mutex<(Vec<ResolvedNode>, Option<Instant>)>,
    /// Cached connections per node address.
    conns: Mutex<HashMap<String, BufReader<TcpStream>>>,
    stats: StatCells,
}

impl FleetClient {
    /// A client over `cfg` (resolves lazily on first use).
    pub fn new(cfg: FleetConfig) -> Self {
        let registry = RegistryClient::new(cfg.registry.clone());
        FleetClient {
            cfg,
            registry,
            nodes: Mutex::new((Vec::new(), None)),
            conns: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
        }
    }

    /// Point-in-time client counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            ok: self.stats.ok.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            registry_failovers: self.stats.registry_failovers.load(Ordering::Relaxed),
            version_mismatches: self.stats.version_mismatches.load(Ordering::Relaxed),
            resolves: self.stats.resolves.load(Ordering::Relaxed),
        }
    }

    /// The node set a request would consider right now (refreshing from
    /// the registry if the cached resolution is stale).
    pub fn current_nodes(&self) -> Result<Vec<ResolvedNode>, FleetError> {
        self.ensure_nodes(false)
    }

    /// Drops the cached resolution so the next request re-resolves.
    pub fn invalidate_resolution(&self) {
        self.nodes.lock().1 = None;
    }

    fn ensure_nodes(&self, force: bool) -> Result<Vec<ResolvedNode>, FleetError> {
        let ttl = Duration::from_millis(self.cfg.resolve_ttl_ms);
        {
            let cached = self.nodes.lock();
            if !force {
                if let (nodes, Some(at)) = (&cached.0, cached.1) {
                    if at.elapsed() < ttl && !nodes.is_empty() {
                        return Ok(nodes.clone());
                    }
                }
            }
        }
        match self.registry.resolve(self.cfg.model.as_deref()) {
            Ok(nodes) if !nodes.is_empty() => {
                self.stats.resolves.fetch_add(1, Ordering::Relaxed);
                *self.nodes.lock() = (nodes.clone(), Some(Instant::now()));
                Ok(nodes)
            }
            Ok(_) => {
                // The registry is up but answered empty — a stale cache
                // is *better* information than "nothing": nodes may
                // simply have missed a heartbeat under load.
                let cached = self.nodes.lock();
                if cached.0.is_empty() {
                    Err(FleetError::NoNodes(
                        self.cfg.model.clone().unwrap_or_else(|| "any model".into()),
                    ))
                } else {
                    self.stats
                        .registry_failovers
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(cached.0.clone())
                }
            }
            Err(e) => {
                let cached = self.nodes.lock();
                if cached.0.is_empty() {
                    Err(FleetError::Registry(e))
                } else {
                    self.stats
                        .registry_failovers
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(cached.0.clone())
                }
            }
        }
    }

    /// Vectorizes `source` somewhere in the fleet.
    ///
    /// # Errors
    ///
    /// [`FleetError::Registry`]/[`FleetError::NoNodes`] when no node set
    /// is reachable at all; [`FleetError::PeersExhausted`] when every
    /// candidate peer failed or answered a wrong version.
    pub fn vectorize(&self, source: &str) -> Result<FleetResponse, FleetError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let nodes = self.ensure_nodes(false)?;
        let start = pick_start(&nodes, self.cfg.model.as_deref(), route_key(source));
        let attempts = self.cfg.retries.max(1).min(nodes.len().max(1));
        let mut last_err = String::from("no candidate nodes");
        for i in 0..attempts {
            let node = &nodes[(start + i) % nodes.len()];
            match self.try_node(node, source) {
                Ok(resp) => {
                    self.stats.ok.fetch_add(1, Ordering::Relaxed);
                    return Ok(resp);
                }
                Err(e) => last_err = format!("{} ({}): {e}", node.node, node.addr),
            }
            // Back off only when another attempt will actually run — a
            // trailing sleep after the final failure is pure added latency
            // on the error path.
            if i + 1 < attempts {
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(self.cfg.backoff_ms));
            }
        }
        Err(FleetError::PeersExhausted(last_err))
    }

    /// One attempt against one node, including version verification.
    fn try_node(&self, node: &ResolvedNode, source: &str) -> Result<FleetResponse, String> {
        let mut fields = Vec::new();
        if let Some(m) = &self.cfg.model {
            fields.push(("model", Json::from(m.as_str())));
        }
        fields.push(("source", Json::from(source)));
        let v = self.request_node(&node.addr, &obj(fields))?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request rejected")
                .to_string());
        }
        let model = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("response missing `model`")?
            .to_string();
        let got_hash = v
            .get("checkpoint_hash")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("response missing `checkpoint_hash`")?;
        self.verify_version(node, &model, got_hash)?;
        Ok(FleetResponse {
            model,
            node: node.node.clone(),
            checkpoint_hash: got_hash,
            source: v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("response missing `source`")?
                .to_string(),
            loops: v.get("loops").cloned().unwrap_or(Json::Null),
            latency_us: v.get("latency_us").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        })
    }

    /// The zero-wrong-version guarantee: the hash stamped on a response
    /// must match what the registry advertises for that node+model. A
    /// mismatch forces a re-resolve — if the *fresh* advertisement
    /// confirms the new hash the node legitimately hot-swapped and the
    /// response is accepted; otherwise the response is rejected and the
    /// request fails over.
    fn verify_version(&self, node: &ResolvedNode, model: &str, got: u64) -> Result<(), String> {
        match node.hash_of(model) {
            Some(expected) if expected == got => Ok(()),
            advertised => {
                if let Ok(fresh) = self.ensure_nodes(true) {
                    let confirmed = fresh
                        .iter()
                        .find(|n| n.node == node.node)
                        .and_then(|n| n.hash_of(model));
                    if confirmed == Some(got) {
                        return Ok(());
                    }
                }
                self.stats
                    .version_mismatches
                    .fetch_add(1, Ordering::Relaxed);
                Err(format!(
                    "version mismatch on {model}: got {got:016x}, advertised {}",
                    match advertised {
                        Some(h) => format!("{h:016x}"),
                        None => "nothing".to_string(),
                    }
                ))
            }
        }
    }

    /// One request/response against a node, using (and on failure
    /// discarding) the cached connection for its address.
    fn request_node(&self, addr: &str, body: &Json) -> Result<Json, String> {
        let line = body.render();
        let mut conns = self.conns.lock();
        for attempt in 0..2 {
            if !conns.contains_key(addr) {
                let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                let _ = stream.set_nodelay(true);
                conns.insert(addr.to_string(), BufReader::new(stream));
            }
            let conn = conns.get_mut(addr).expect("connection just ensured");
            let io = conn
                .get_mut()
                .write_all(line.as_bytes())
                .and_then(|()| conn.get_mut().write_all(b"\n"))
                .and_then(|()| conn.get_mut().flush())
                .and_then(|()| {
                    let mut response = String::new();
                    conn.read_line(&mut response).map(|n| (n, response))
                });
            match io {
                Ok((0, _)) | Err(_) if attempt == 0 => {
                    conns.remove(addr);
                    continue;
                }
                Ok((0, _)) => return Err("node closed the connection".to_string()),
                Err(e) => return Err(e.to_string()),
                Ok((_, response)) => {
                    return Json::parse(response.trim()).map_err(|e| format!("bad response: {e}"))
                }
            }
        }
        unreachable!("two attempts always return")
    }
}

/// FNV-1a over the source text — the same family of hash the hub uses
/// for its A/B routing key, so routing stays deterministic across
/// client restarts.
fn route_key(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Picks the starting node index for a request: the route key selects a
/// slot in proportion to each node's advertised weight for `model` (any
/// model when `None`; zero-weight canaries count as weight 1 so an
/// all-canary fleet still serves). Deterministic, so a given source
/// keeps hitting the same node's warm cache while the node set is
/// stable.
pub(crate) fn pick_start(nodes: &[ResolvedNode], model: Option<&str>, route_key: u64) -> usize {
    if nodes.is_empty() {
        return 0;
    }
    let weight_of = |n: &ResolvedNode| -> u64 {
        let w: u64 = n
            .models
            .iter()
            .filter(|ad| model.is_none_or(|m| ad.model == m))
            .map(|ad| u64::from(ad.weight))
            .sum();
        w.max(1)
    };
    let total: u64 = nodes.iter().map(weight_of).sum();
    // Same spread trick as the hub's A/B router: a multiplicative mix
    // of the route key modulo the total weight.
    let mut slot = route_key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % total;
    for (i, n) in nodes.iter().enumerate() {
        let w = weight_of(n);
        if slot < w {
            return i;
        }
        slot -= w;
    }
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelAd;

    fn node(name: &str, weight: u32) -> ResolvedNode {
        ResolvedNode {
            node: name.to_string(),
            addr: format!("127.0.0.1:1{name}"),
            age_ms: 0,
            models: vec![ModelAd {
                model: "prod".into(),
                checkpoint_hash: 0xAB,
                weight,
            }],
        }
    }

    #[test]
    fn pick_start_is_deterministic_and_weight_proportional() {
        let nodes = vec![node("a", 3), node("b", 1)];
        let mut counts = [0usize; 2];
        for key in 0..4000u64 {
            let i = pick_start(&nodes, Some("prod"), key);
            assert_eq!(i, pick_start(&nodes, Some("prod"), key), "deterministic");
            counts[i] += 1;
        }
        // 3:1 split with generous tolerance.
        assert!(counts[0] > counts[1] * 2, "weights respected: {counts:?}");
        assert!(counts[1] > 0, "light node still sees traffic: {counts:?}");
    }

    /// Grabs a loopback port that nothing listens on (bind, read, drop)
    /// so connection attempts fail instantly with "refused".
    fn dead_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        addr
    }

    #[test]
    fn error_path_skips_the_trailing_backoff_sleep() {
        let backoff_ms = 150u64;
        let cfg = FleetConfig::new("127.0.0.1:1") // never contacted
            .with_model("prod")
            .with_retries(2)
            .with_backoff_ms(backoff_ms)
            .with_resolve_ttl_ms(3_600_000);
        let client = FleetClient::new(cfg);
        // Seed the resolution cache directly: two dead nodes, fresh TTL,
        // so vectorize never talks to a registry.
        let dead: Vec<ResolvedNode> = ["a", "b"]
            .iter()
            .map(|n| ResolvedNode {
                node: n.to_string(),
                addr: dead_addr(),
                age_ms: 0,
                models: vec![ModelAd {
                    model: "prod".into(),
                    checkpoint_hash: 0xAB,
                    weight: 1,
                }],
            })
            .collect();
        *client.nodes.lock() = (dead, Some(Instant::now()));

        let t = Instant::now();
        let err = client.vectorize("int f(){return 0;}");
        let elapsed = t.elapsed();
        assert!(matches!(err, Err(FleetError::PeersExhausted(_))));
        // Two attempts → exactly one backoff between them; a trailing
        // sleep after the final failure would push this past 2×.
        assert!(
            elapsed >= Duration::from_millis(backoff_ms),
            "missing inter-attempt backoff: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(2 * backoff_ms),
            "trailing backoff slept after the final attempt: {elapsed:?}"
        );
        assert_eq!(client.stats().failovers, 1, "one backoff, not two");
    }

    #[test]
    fn pick_start_handles_canaries_and_unknown_models() {
        // All-zero weights must not divide by zero and must still route.
        let nodes = vec![node("a", 0), node("b", 0)];
        let picked: std::collections::HashSet<usize> = (0..100u64)
            .map(|k| pick_start(&nodes, Some("prod"), k))
            .collect();
        assert_eq!(picked.len(), 2, "both canaries reachable");
        // A model nobody advertises falls back to uniform weight 1.
        let i = pick_start(&nodes, Some("ghost"), 7);
        assert!(i < nodes.len());
        assert_eq!(pick_start(&[], Some("prod"), 7), 0);
    }
}
