//! The end-to-end framework: train once, then vectorize arbitrary source.
//!
//! Figure 3's outer box. After training, "it can be plugged in as is for
//! inference without further retraining" — [`NeuroVectorizer::vectorize_source`]
//! is that inference product: it reads C source, predicts `(VF, IF)` for
//! every innermost loop and returns the source with pragmas injected
//! (Figure 4).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use nvc_embed::{extract_loop_samples, EmbedConfig, PathSample};
use nvc_frontend::{inject_pragmas, FrontendError, LoopPragma};
use nvc_hub::HubConfig;
use nvc_machine::TargetConfig;
use nvc_rl::{ActionDims, IterStats, PpoConfig, PpoTrainer};
use nvc_serve::{DecisionModel, ServeConfig, ServeHandle};
use nvc_vectorizer::{ActionSpace, VectorDecision};

use crate::env::VectorizeEnv;

/// Top-level configuration for the framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvConfig {
    /// Target machine description.
    pub target: TargetConfig,
    /// Embedding-network configuration.
    pub embed: EmbedConfig,
    /// PPO configuration.
    pub ppo: PpoConfig,
    /// Serving-layer configuration (`nvc serve`, [`NeuroVectorizer::serve`]).
    pub serve: ServeConfig,
    /// Hub-tier configuration (`nvc hub`: TCP transport, model registry,
    /// persistent cache).
    pub hub: HubConfig,
    /// Worker threads for the `nvc-nn` matmul family (`0`/`1` =
    /// single-threaded). Analogous to `ppo.collect_threads` one layer
    /// down: output rows of every `matmul`/`matmul_tn`/`matmul_nt` and
    /// the fused `Graph::linear` shard across scoped threads with each
    /// element's accumulation order untouched, so any thread count is
    /// bitwise-identical to single-threaded — training, serving and the
    /// hub all inherit the knob through [`NeuroVectorizer::new`], which
    /// applies it process-wide (`nvc_nn::kernels::set_matmul_threads`).
    /// Defaults to the `NVC_MATMUL_THREADS` environment variable (or 1).
    pub matmul_threads: usize,
    /// Numeric contract of the `nvc-nn` kernels, applied process-wide by
    /// [`NeuroVectorizer::new`] (`nvc_nn::kernels::set_kernel_mode`).
    /// `Strict` (the default) keeps the bitwise-parity kernels — what
    /// training and reproduction runs want; `Fast` enables fused-FMA
    /// accumulators, reduction-dimension sharding and the online softmax
    /// — ε-close to strict with identical decisions, which is why `nvc
    /// serve` and `nvc hub` default to it. Defaults to the
    /// `NVC_KERNEL_MODE` environment variable (or `Strict`).
    pub kernel_mode: nvc_nn::KernelMode,
    /// Seed for parameter init and exploration.
    pub seed: u64,
}

impl NvConfig {
    /// The paper's configuration: 340-dim code vectors, 64×64 FCNN, batch
    /// 4000, lr 5e-5 (§4).
    pub fn paper() -> Self {
        let target = TargetConfig::i7_8559u();
        let dims = ActionDims {
            n_vf: target.vf_candidates().len(),
            n_if: target.if_candidates().len(),
        };
        NvConfig {
            target,
            embed: EmbedConfig::paper(),
            ppo: PpoConfig {
                action_dims: dims,
                ..PpoConfig::default()
            },
            serve: ServeConfig::default(),
            hub: HubConfig::default(),
            matmul_threads: nvc_nn::kernels::default_matmul_threads(),
            kernel_mode: nvc_nn::kernels::default_kernel_mode(),
            seed: 0,
        }
    }

    /// A reduced configuration for tests and quick experiments: small
    /// embedding tables, small batches, higher learning rate.
    pub fn fast() -> Self {
        let target = TargetConfig::i7_8559u();
        let dims = ActionDims {
            n_vf: target.vf_candidates().len(),
            n_if: target.if_candidates().len(),
        };
        NvConfig {
            target,
            embed: EmbedConfig::fast(),
            ppo: PpoConfig {
                lr: 2e-3,
                train_batch: 256,
                minibatch: 64,
                epochs: 4,
                hidden: vec![32, 32],
                action_dims: dims,
                ..PpoConfig::default()
            },
            serve: ServeConfig::default(),
            hub: HubConfig::default(),
            matmul_threads: nvc_nn::kernels::default_matmul_threads(),
            kernel_mode: nvc_nn::kernels::default_kernel_mode(),
            seed: 0,
        }
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the kernel worker count (builder style). Purely a
    /// throughput dial: results are bitwise-identical at any value.
    pub fn with_matmul_threads(mut self, threads: usize) -> Self {
        self.matmul_threads = threads;
        self
    }

    /// Overrides the kernel numeric contract (builder style). Unlike the
    /// thread count this changes low-order result bits (never decisions):
    /// see [`nvc_nn::KernelMode`].
    pub fn with_kernel_mode(mut self, mode: nvc_nn::KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }
}

/// The trained (or trainable) NeuroVectorizer.
#[derive(Debug)]
pub struct NeuroVectorizer {
    cfg: NvConfig,
    trainer: PpoTrainer,
    rng: ChaCha8Rng,
}

impl NeuroVectorizer {
    /// Creates an untrained framework instance.
    ///
    /// Applies `cfg.matmul_threads` and `cfg.kernel_mode` process-wide
    /// (`nvc_nn::kernels::set_matmul_threads` / `set_kernel_mode`) so
    /// everything downstream of this model — training iterations,
    /// `nvc-serve` worker flushes, hub `reload`s through
    /// [`NeuroVectorizer::hub_loader`] — runs the configured kernels.
    /// Both knobs are last-writer-wins across instances: the thread
    /// count is bitwise-neutral, and the kernel mode is decision-neutral
    /// (strict and fast differ only in low-order float bits), so a
    /// late-constructed instance can change the numerics of a colocated
    /// one's floats but never its answers.
    pub fn new(cfg: NvConfig) -> Self {
        nvc_nn::kernels::set_matmul_threads(cfg.matmul_threads);
        nvc_nn::kernels::set_kernel_mode(cfg.kernel_mode);
        let trainer = PpoTrainer::new(&cfg.ppo, &cfg.embed, cfg.seed);
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(0x9E37));
        NeuroVectorizer { cfg, trainer, rng }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NvConfig {
        &self.cfg
    }

    /// The underlying PPO trainer.
    pub fn trainer(&self) -> &PpoTrainer {
        &self.trainer
    }

    /// Trains for `iterations` PPO iterations on `env`.
    pub fn train(&mut self, env: &mut VectorizeEnv, iterations: usize) -> Vec<IterStats> {
        self.trainer.train(env, iterations, &mut self.rng)
    }

    /// Attaches (or detaches, with `None`) a training-telemetry journal:
    /// every iteration appends one JSON line — reward, losses, entropy,
    /// per-phase wall-clock (see [`PpoTrainer::set_journal`]). The `nvc
    /// train --journal FILE` flag plumbs through here.
    pub fn set_train_journal(&mut self, journal: Option<nvc_obs::Journal>) {
        self.trainer.set_journal(journal);
    }

    /// Greedy decision for a loop observation.
    pub fn decide(&self, sample: &PathSample, space: &ActionSpace) -> VectorDecision {
        let (v, i) = self.trainer.predict(sample);
        space.decision_from_pair(v, i)
    }

    /// Embeds a loop sample with the trained encoder (for NNS/decision
    /// trees, §3.5).
    pub fn encode(&self, sample: &PathSample) -> Vec<f32> {
        self.trainer.embedder().encode(self.trainer.store(), sample)
    }

    /// Embeds a whole batch of loop samples in **one** segmented encoder
    /// forward — the entry point the NNS/decision-tree/ranker labelling
    /// passes share with training and serving. Row `i` equals
    /// [`NeuroVectorizer::encode`] of `samples[i]` bitwise.
    pub fn encode_batch(&self, samples: &[&PathSample]) -> Vec<Vec<f32>> {
        self.trainer
            .embedder()
            .encode_batch(self.trainer.store(), samples)
    }

    /// Serializes all trained weights (embedding + policy) to the
    /// `nvc-nn` checkpoint format.
    pub fn checkpoint(&self) -> String {
        nvc_nn::serialize::to_string(self.trainer.store())
    }

    /// Content hash of the currently loaded weights — the version key
    /// the hub tier stamps on persisted decision caches. Equals
    /// `nvc_nn::serialize::checkpoint_hash_text` of
    /// [`NeuroVectorizer::checkpoint`].
    pub fn checkpoint_hash(&self) -> u64 {
        nvc_nn::serialize::checkpoint_hash(self.trainer.store())
    }

    /// Builds the checkpoint loader the hub's `reload` verb (and the
    /// `nvc hub` CLI) uses: reads a checkpoint file, restores it into a
    /// fresh model built from `cfg`, and returns the model plus the
    /// content hash of its live weights.
    pub fn hub_loader(cfg: NvConfig) -> nvc_hub::CheckpointLoader {
        Box::new(move |path: &str| {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let mut nv = NeuroVectorizer::new(cfg.clone());
            nv.restore(&text).map_err(|e| format!("{path}: {e}"))?;
            let hash = nv.checkpoint_hash();
            Ok((
                std::sync::Arc::new(nv) as std::sync::Arc<dyn DecisionModel>,
                hash,
            ))
        })
    }

    /// Fine-tunes the current weights on any [`nvc_rl::BanditEnv`] —
    /// notably an [`nvc_rl::ReplayEnv`] over journaled serve traffic.
    /// Same PPO loop as [`NeuroVectorizer::train`], different reward
    /// oracle.
    pub fn fine_tune(
        &mut self,
        env: &mut impl nvc_rl::BanditEnv,
        iterations: usize,
    ) -> Vec<IterStats> {
        self.trainer.train(env, iterations, &mut self.rng)
    }

    /// Builds the challenger trainer the hub's online-learning loop
    /// uses: restore the champion checkpoint into a fresh model built
    /// from `cfg`, replay the journaled reports into a
    /// [`nvc_rl::ReplayEnv`], fine-tune for `iterations`, and write the
    /// challenger checkpoint to the output path. Mirrors
    /// [`NeuroVectorizer::hub_loader`]'s closure pattern so `nvc-hub`
    /// stays decoupled from this crate.
    pub fn challenger_trainer(cfg: NvConfig, iterations: usize) -> nvc_hub::ChallengerTrainer {
        Box::new(move |records, champion_path, out_path| {
            let text = std::fs::read_to_string(champion_path)
                .map_err(|e| format!("read {champion_path}: {e}"))?;
            let mut nv = NeuroVectorizer::new(cfg.clone());
            nv.restore(&text)
                .map_err(|e| format!("{champion_path}: {e}"))?;
            let mut env = nvc_rl::ReplayEnv::new(cfg.ppo.action_dims, 0.0);
            for r in records {
                env.record(&r.sample, (r.vf_idx, r.if_idx), r.reward);
            }
            if env.is_empty() {
                return Err("empty replay corpus".to_string());
            }
            nv.fine_tune(&mut env, iterations);
            let tmp = format!("{out_path}.tmp");
            std::fs::write(&tmp, nv.checkpoint()).map_err(|e| format!("write {tmp}: {e}"))?;
            std::fs::rename(&tmp, out_path).map_err(|e| format!("rename {tmp}: {e}"))
        })
    }

    /// Restores weights from a checkpoint produced by
    /// [`NeuroVectorizer::checkpoint`]. The configuration must match the
    /// one the checkpoint was trained with.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint is malformed or shapes
    /// mismatch.
    pub fn restore(
        &mut self,
        checkpoint: &str,
    ) -> Result<(), nvc_nn::serialize::ParseCheckpointError> {
        nvc_nn::serialize::load_into(self.trainer.store_mut(), checkpoint)
    }

    /// The inference product (Figure 4): injects a
    /// `#pragma clang loop vectorize_width(V) interleave_count(I)` above
    /// every innermost loop of `source`, chosen by the trained policy.
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] if `source` does not parse.
    pub fn vectorize_source(&self, source: &str) -> Result<String, FrontendError> {
        let space = ActionSpace::for_target(&self.cfg.target);
        let sites = extract_loop_samples(source, &self.cfg.embed)?;
        let pragmas: Vec<(u32, LoopPragma)> = sites
            .iter()
            .map(|site| {
                let d = self.decide(&site.sample, &space);
                (
                    site.header_line,
                    LoopPragma {
                        vectorize_width: d.vf,
                        interleave_count: d.if_,
                    },
                )
            })
            .collect();
        Ok(inject_pragmas(source, &pragmas))
    }

    /// Moves this (typically trained) model into a running
    /// [`ServeHandle`] configured by `cfg.serve`: the long-lived serving
    /// product with decision caching and batched inference. See
    /// `nvc-serve` for the protocol.
    pub fn serve(self) -> ServeHandle {
        let cfg = self.cfg.serve.clone();
        ServeHandle::start(std::sync::Arc::new(self), cfg)
    }
}

/// The serving layer drives the trained model through this interface:
/// batched greedy decisions, one graph per batch
/// ([`PpoTrainer::predict_batch`]).
impl DecisionModel for NeuroVectorizer {
    fn embed_config(&self) -> &EmbedConfig {
        &self.cfg.embed
    }

    fn target(&self) -> &TargetConfig {
        &self.cfg.target
    }

    fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
        self.trainer.predict_batch(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_datasets::generator;
    use nvc_frontend::{extract_loops, parse_translation_unit};

    #[test]
    fn vectorize_source_injects_pragmas_on_all_innermost_loops() {
        let nv = NeuroVectorizer::new(NvConfig::fast());
        let src = "float a[1024]; float b[1024]; float M[64][64];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * 2.0;
    }
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            M[i][j] = 0.0;
        }
    }
}";
        let out = nv.vectorize_source(src).expect("vectorize");
        assert_eq!(out.matches("#pragma clang loop").count(), 2);
        // The result still parses and the pragmas attach to loops.
        let tu = parse_translation_unit(&out).unwrap();
        let loops = extract_loops(&tu, &out);
        let with_pragma = loops.iter().filter(|l| l.pragma.is_some()).count();
        assert_eq!(with_pragma, 2);
        // Only innermost loops are annotated (the outer i loop is not).
        for l in &loops {
            if !l.is_innermost {
                assert!(l.pragma.is_none());
            }
        }
    }

    #[test]
    fn training_improves_reward_on_small_pool() {
        let cfg = NvConfig::fast();
        let mut env = VectorizeEnv::new(generator::generate(1, 24), cfg.target.clone(), &cfg.embed);
        let mut nv = NeuroVectorizer::new(cfg);
        let stats = nv.train(&mut env, 12);
        let first = stats.first().unwrap().reward_mean;
        let last = stats.last().unwrap().reward_mean;
        assert!(
            last > first,
            "training did not improve reward: {first:.3} → {last:.3}"
        );
        // A trained policy should produce positive mean reward (better
        // than baseline on average).
        assert!(last > -0.5, "reward collapsed: {last}");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_decisions() {
        let cfg = NvConfig::fast().with_seed(5);
        let mut env = VectorizeEnv::new(generator::generate(5, 16), cfg.target.clone(), &cfg.embed);
        let mut nv = NeuroVectorizer::new(cfg.clone());
        nv.train(&mut env, 4);
        let ckpt = nv.checkpoint();
        let space = env.space().clone();
        let decisions: Vec<_> = env
            .contexts()
            .iter()
            .map(|c| nv.decide(&c.sample, &space))
            .collect();

        // A fresh instance with different init restores to the same
        // behaviour.
        let mut nv2 = NeuroVectorizer::new(cfg.with_seed(999));
        nv2.restore(&ckpt).expect("restore");
        for (ctx, d) in env.contexts().iter().zip(decisions.iter()) {
            assert_eq!(nv2.decide(&ctx.sample, &space), *d);
        }
    }

    #[test]
    fn restore_rejects_mismatched_architectures() {
        let mut cfg_big = NvConfig::fast();
        cfg_big.ppo.hidden = vec![64, 64];
        let nv_big = NeuroVectorizer::new(cfg_big);
        let ckpt = nv_big.checkpoint();
        let mut cfg_small = NvConfig::fast();
        cfg_small.ppo.hidden = vec![16, 16];
        let mut nv_small = NeuroVectorizer::new(cfg_small);
        assert!(nv_small.restore(&ckpt).is_err());
    }

    #[test]
    fn encode_batch_matches_per_sample_encode() {
        let cfg = NvConfig::fast();
        let env = VectorizeEnv::new(generator::generate(3, 10), cfg.target.clone(), &cfg.embed);
        let nv = NeuroVectorizer::new(cfg);
        let samples: Vec<&nvc_embed::PathSample> =
            env.contexts().iter().map(|c| &c.sample).collect();
        let batched = nv.encode_batch(&samples);
        assert_eq!(batched.len(), samples.len());
        for (s, row) in samples.iter().zip(batched.iter()) {
            assert_eq!(row, &nv.encode(s), "batched embedding diverged");
        }
    }

    /// The serve flush site's contract: an empty batch is answered with
    /// an empty decision list, never a panic in a daemon worker.
    #[test]
    fn decide_batch_of_nothing_is_empty_not_a_panic() {
        let nv = NeuroVectorizer::new(NvConfig::fast());
        assert!(nv.decide_batch(&[]).is_empty());
    }

    #[test]
    fn decisions_are_deterministic_after_training() {
        let cfg = NvConfig::fast();
        let env = VectorizeEnv::new(generator::generate(2, 8), cfg.target.clone(), &cfg.embed);
        let nv = NeuroVectorizer::new(cfg);
        let space = env.space().clone();
        let d1 = nv.decide(&env.contexts()[0].sample, &space);
        let d2 = nv.decide(&env.contexts()[0].sample, &space);
        assert_eq!(d1, d2);
    }
}
