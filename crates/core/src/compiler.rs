//! The compile-and-run service: the reproduction's `clang -O3 && ./a.out`.
//!
//! Figure 3's loop: "The agent then compiles the program with clang/LLVM
//! to gather the execution time improvements, which are used as rewards."
//! This module packages the whole substrate — optional Polly-lite
//! preprocessing, parsing, lowering, per-loop vectorization decisions,
//! the machine model, per-invocation call overhead and the scalar
//! (non-loop) portion — behind one deterministic function.

use serde::{Deserialize, Serialize};

use nvc_datasets::Kernel;
use nvc_frontend::parse_translation_unit;
use nvc_ir::{lower_innermost_loops, LoweredLoop};
use nvc_machine::TargetConfig;
use nvc_polly::{optimize_source, PollyConfig};
use nvc_vectorizer::{CompileOutcome, VectorDecision, Vectorizer};

/// Fixed cycles per kernel invocation: call/return, argument setup and
/// measurement harness. Calibrated so the §2.1 dot product reproduces the
/// paper's 2.6× baseline-over-scalar ratio at kernel level.
pub const CALL_OVERHEAD_CYCLES: f64 = 120.0;

/// Scalar (non-loop) IPC used to convert `scalar_work` instructions into
/// cycles.
pub const SCALAR_IPC: f64 = 2.0;

/// How the compiler should pick `(VF, IF)` for a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopDecision {
    /// Let the baseline cost model decide (`-O3` default).
    Baseline,
    /// Honor an injected pragma (clamped to legality, as §3 describes).
    Pragma(VectorDecision),
}

/// Timing and compile-cost report for one loop nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Function containing the loop.
    pub function: String,
    /// Loop index within the program.
    pub loop_index: usize,
    /// The decision after clamping.
    pub decision: VectorDecision,
    /// Cycles across all executions of the nest.
    pub nest_cycles: f64,
    /// Modelled compile time for this loop.
    pub compile_ms: f64,
}

/// Whole-program result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramTiming {
    /// Total cycles per kernel invocation (loops + scalar work + call
    /// overhead).
    pub total_cycles: f64,
    /// Per-loop breakdown.
    pub loops: Vec<LoopReport>,
    /// Total modelled compile time.
    pub compile_ms: f64,
    /// Outcome against the 10× compile budget (set by
    /// [`Compiler::run_with_budget`]).
    pub compile_outcome: CompileOutcome,
}

impl ProgramTiming {
    /// Seconds at the target frequency.
    pub fn seconds(&self, target: &TargetConfig) -> f64 {
        target.cycles_to_seconds(self.total_cycles)
    }
}

/// Errors from compiling a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The source failed to parse.
    Parse(nvc_frontend::FrontendError),
    /// Lowering failed.
    Lower(nvc_ir::IrError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The deterministic compile-and-run service.
#[derive(Debug, Clone)]
pub struct Compiler {
    vectorizer: Vectorizer,
    polly: Option<PollyConfig>,
}

impl Compiler {
    /// A compiler for `target` without Polly preprocessing.
    pub fn new(target: TargetConfig) -> Self {
        Compiler {
            vectorizer: Vectorizer::new(target),
            polly: None,
        }
    }

    /// Enables Polly-lite preprocessing (builder style).
    pub fn with_polly(mut self, cfg: PollyConfig) -> Self {
        self.polly = Some(cfg);
        self
    }

    /// The target description.
    pub fn target(&self) -> &TargetConfig {
        self.vectorizer.target()
    }

    /// The underlying vectorizer.
    pub fn vectorizer(&self) -> &Vectorizer {
        &self.vectorizer
    }

    /// Parses and lowers a kernel (after Polly preprocessing when
    /// enabled), returning its innermost loops.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the kernel does not fit the supported
    /// subset.
    pub fn front_end(&self, kernel: &Kernel) -> Result<Vec<LoweredLoop>, CompileError> {
        let source = match &self.polly {
            Some(cfg) => {
                optimize_source(&kernel.source, cfg)
                    .map_err(CompileError::Parse)?
                    .0
            }
            None => kernel.source.clone(),
        };
        let tu = parse_translation_unit(&source).map_err(CompileError::Parse)?;
        lower_innermost_loops(&tu, &source, &kernel.env).map_err(CompileError::Lower)
    }

    /// Compiles and "runs" a kernel, deciding each loop via `decide`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the front end fails.
    pub fn run_with(
        &self,
        kernel: &Kernel,
        mut decide: impl FnMut(&LoweredLoop) -> LoopDecision,
    ) -> Result<ProgramTiming, CompileError> {
        let loops = self.front_end(kernel)?;
        let mut total = CALL_OVERHEAD_CYCLES + kernel.scalar_work as f64 / SCALAR_IPC;
        let mut reports = Vec::with_capacity(loops.len());
        let mut compile_ms = 0.0;
        for l in &loops {
            let compiled = match decide(l) {
                LoopDecision::Baseline => self.vectorizer.compile_baseline(&l.ir),
                LoopDecision::Pragma(d) => self.vectorizer.compile(&l.ir, d),
            };
            let nest_cycles = compiled.nest_cycles(&l.ir);
            total += nest_cycles;
            compile_ms += compiled.compile_ms;
            reports.push(LoopReport {
                function: l.function.clone(),
                loop_index: l.loop_index,
                decision: compiled.decision,
                nest_cycles,
                compile_ms: compiled.compile_ms,
            });
        }
        Ok(ProgramTiming {
            total_cycles: total,
            loops: reports,
            compile_ms,
            compile_outcome: CompileOutcome::Ok { ms: compile_ms },
        })
    }

    /// Like [`Compiler::run_with`], but applies the paper's §3.4 rule: if
    /// the program's compile time exceeds `10 × baseline_compile_ms`, the
    /// result is flagged [`CompileOutcome::TimedOut`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the front end fails.
    pub fn run_with_budget(
        &self,
        kernel: &Kernel,
        baseline_compile_ms: f64,
        decide: impl FnMut(&LoweredLoop) -> LoopDecision,
    ) -> Result<ProgramTiming, CompileError> {
        let mut t = self.run_with(kernel, decide)?;
        t.compile_outcome = CompileOutcome::from_times(t.compile_ms, baseline_compile_ms);
        Ok(t)
    }

    /// Compiles with the baseline cost model everywhere (the `-O3`
    /// reference everything is normalized to).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the front end fails.
    pub fn run_baseline(&self, kernel: &Kernel) -> Result<ProgramTiming, CompileError> {
        self.run_with(kernel, |_| LoopDecision::Baseline)
    }

    /// Compiles fully scalar (`VF = IF = 1`), the paper's "not vectorized"
    /// reference point.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the front end fails.
    pub fn run_scalar(&self, kernel: &Kernel) -> Result<ProgramTiming, CompileError> {
        self.run_with(kernel, |_| LoopDecision::Pragma(VectorDecision::scalar()))
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new(TargetConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_ir::ParamEnv;

    fn dot_product_kernel() -> Kernel {
        Kernel::new(
            "dot",
            "test",
            "int vec[512] __attribute__((aligned(16)));
int kernel() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}",
            ParamEnv::new(),
        )
    }

    /// §2.1 headline: the baseline improves ~2.6× over the non-vectorized
    /// kernel at whole-kernel granularity.
    #[test]
    fn dot_product_baseline_speedup_matches_paper() {
        let c = Compiler::default();
        let k = dot_product_kernel();
        let scalar = c.run_scalar(&k).unwrap();
        let baseline = c.run_baseline(&k).unwrap();
        let speedup = scalar.total_cycles / baseline.total_cycles;
        assert!(
            (2.0..3.2).contains(&speedup),
            "baseline vs scalar = {speedup:.2} (paper: 2.6)"
        );
    }

    #[test]
    fn pragma_decisions_flow_through() {
        let c = Compiler::default();
        let k = dot_product_kernel();
        let t = c
            .run_with(&k, |_| LoopDecision::Pragma(VectorDecision::new(16, 4)))
            .unwrap();
        assert_eq!(t.loops.len(), 1);
        assert_eq!(t.loops[0].decision, VectorDecision::new(16, 4));
    }

    #[test]
    fn polly_mode_transforms_gemm() {
        let gemm = nvc_datasets::polybench::polybench()
            .into_iter()
            .find(|k| k.name == "poly_gemm")
            .unwrap();
        let plain = Compiler::default();
        let polly = Compiler::default().with_polly(PollyConfig::default());
        let t_plain = plain.run_baseline(&gemm).unwrap();
        let t_polly = polly.run_baseline(&gemm).unwrap();
        // Interchange + tiling must pay off on a 256³ gemm.
        assert!(
            t_polly.total_cycles < t_plain.total_cycles,
            "polly={} plain={}",
            t_polly.total_cycles,
            t_plain.total_cycles
        );
        // And the loop structure changed (more loops after tiling).
        assert!(t_polly.loops.len() >= t_plain.loops.len());
    }

    #[test]
    fn scalar_work_adds_cycles() {
        let c = Compiler::default();
        let k = dot_product_kernel();
        let k2 = dot_product_kernel().with_scalar_work(10_000);
        let t1 = c.run_baseline(&k).unwrap();
        let t2 = c.run_baseline(&k2).unwrap();
        assert!((t2.total_cycles - t1.total_cycles - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn compile_budget_flags_timeouts() {
        let c = Compiler::default();
        let k = dot_product_kernel();
        let base = c.run_baseline(&k).unwrap();
        let ok = c
            .run_with_budget(&k, base.compile_ms, |_| LoopDecision::Baseline)
            .unwrap();
        assert!(!ok.compile_outcome.timed_out());
        // An absurdly small budget forces a timeout.
        let bad = c
            .run_with_budget(&k, base.compile_ms / 100.0, |_| LoopDecision::Baseline)
            .unwrap();
        assert!(bad.compile_outcome.timed_out());
    }

    #[test]
    fn deterministic_timing() {
        let c = Compiler::default();
        let k = dot_product_kernel();
        let a = c.run_baseline(&k).unwrap();
        let b = c.run_baseline(&k).unwrap();
        assert_eq!(a, b);
    }
}
