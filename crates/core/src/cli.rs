//! Small shared argument parser for the `nvc` subcommands.
//!
//! Every subcommand declares its flags up front; anything starting with
//! `--` that is not declared is a hard error with usage text, instead of
//! being silently ignored (a misspelled `--bacth 64` used to fall
//! through as a positional and change nothing). Both `--flag value` and
//! `--flag=value` spellings are accepted; repeatable flags collect every
//! occurrence (`nvc hub --model a=1.ckpt --model b=2.ckpt`).

/// One declared flag.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// The flag token, including the leading dashes (`"--kernels"`).
    pub name: &'static str,
    /// True when the flag consumes a value; false for boolean switches.
    pub takes_value: bool,
    /// True when the flag may appear more than once.
    pub repeatable: bool,
}

impl Flag {
    /// A single-occurrence flag taking a value.
    pub const fn value(name: &'static str) -> Self {
        Flag {
            name,
            takes_value: true,
            repeatable: false,
        }
    }

    /// A flag taking a value that may repeat.
    pub const fn repeated(name: &'static str) -> Self {
        Flag {
            name,
            takes_value: true,
            repeatable: true,
        }
    }

    /// A boolean switch.
    pub const fn switch(name: &'static str) -> Self {
        Flag {
            name,
            takes_value: false,
            repeatable: false,
        }
    }
}

/// The result of a successful parse.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    values: Vec<(&'static str, String)>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// The last value of `name` (conventional flag override order).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeatable flag, in order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// True when a switch (or any flag) was present.
    pub fn has(&self, name: &str) -> bool {
        self.values.iter().any(|(n, _)| *n == name)
    }

    /// Parses `name`'s value, with a readable error naming the flag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag and the bad value.
    pub fn parse_value<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{v}` for {name}")),
        }
    }

    /// Positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

/// Parses `args` against the declared `flags`.
///
/// # Errors
///
/// Returns a message (already containing `usage`) for: an undeclared
/// `--flag`, a value flag at the end of the line, or a repeated
/// non-repeatable flag.
pub fn parse_args(args: &[String], flags: &[Flag], usage: &str) -> Result<ParsedArgs, String> {
    let mut out = ParsedArgs::default();
    let mut i = 0;
    while i < args.len() {
        let tok = &args[i];
        if let Some(stripped) = tok.strip_prefix("--") {
            let (name, inline) = match stripped.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (stripped, None),
            };
            let flag = flags
                .iter()
                .find(|f| f.name.trim_start_matches('-') == name)
                .ok_or_else(|| format!("unknown flag `--{name}`\n{usage}"))?;
            if !flag.repeatable && out.has(flag.name) {
                return Err(format!("{} given more than once\n{usage}", flag.name));
            }
            let value = if !flag.takes_value {
                if inline.is_some() {
                    return Err(format!("{} takes no value\n{usage}", flag.name));
                }
                "true".to_string()
            } else if let Some(v) = inline {
                v
            } else {
                i += 1;
                args.get(i)
                    .cloned()
                    .ok_or_else(|| format!("{} requires a value\n{usage}", flag.name))?
            };
            out.values.push((flag.name, value));
        } else {
            out.positionals.push(tok.clone());
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const FLAGS: &[Flag] = &[
        Flag::value("--kernels"),
        Flag::repeated("--model"),
        Flag::switch("--verbose"),
    ];

    #[test]
    fn parses_values_positionals_and_switches() {
        let p = parse_args(
            &argv(&["file.c", "--kernels", "64", "--verbose", "other.c"]),
            FLAGS,
            "usage",
        )
        .unwrap();
        assert_eq!(p.get("--kernels"), Some("64"));
        assert_eq!(p.parse_value::<usize>("--kernels").unwrap(), Some(64));
        assert!(p.has("--verbose"));
        assert_eq!(p.positionals(), &["file.c", "other.c"]);
    }

    #[test]
    fn equals_spelling_and_repeats() {
        let p = parse_args(
            &argv(&["--model=a=1.ckpt", "--model", "b=2.ckpt"]),
            FLAGS,
            "usage",
        )
        .unwrap();
        // Only the first `=` splits flag from value.
        assert_eq!(p.get_all("--model"), vec!["a=1.ckpt", "b=2.ckpt"]);
    }

    #[test]
    fn unknown_flag_is_an_error_with_usage() {
        let e = parse_args(&argv(&["--bacth", "64"]), FLAGS, "usage: nvc …").unwrap_err();
        assert!(e.contains("unknown flag `--bacth`"), "{e}");
        assert!(e.contains("usage: nvc …"), "error must carry usage text");
    }

    #[test]
    fn missing_value_and_duplicate_are_errors() {
        assert!(parse_args(&argv(&["--kernels"]), FLAGS, "u")
            .unwrap_err()
            .contains("requires a value"));
        assert!(
            parse_args(&argv(&["--kernels", "1", "--kernels", "2"]), FLAGS, "u")
                .unwrap_err()
                .contains("more than once")
        );
        assert!(parse_args(&argv(&["--verbose=yes"]), FLAGS, "u")
            .unwrap_err()
            .contains("takes no value"));
    }

    #[test]
    fn bad_numeric_value_names_the_flag() {
        let p = parse_args(&argv(&["--kernels", "lots"]), FLAGS, "u").unwrap();
        let e = p.parse_value::<usize>("--kernels").unwrap_err();
        assert!(e.contains("--kernels") && e.contains("lots"), "{e}");
    }
}
