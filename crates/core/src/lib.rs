//! # NeuroVectorizer — end-to-end vectorization with deep RL
//!
//! A from-scratch Rust reproduction of *"NeuroVectorizer: End-to-End
//! Vectorization with Deep Reinforcement Learning"* (Haj-Ali, Ahmed,
//! Willke, Shao, Asanović, Stoica — CGO 2020).
//!
//! The pipeline (the paper's Figure 3):
//!
//! ```text
//! C source ──► loop extraction ──► code2vec embedding ──► PPO agent
//!    ▲                                                        │
//!    └────── pragma injection ◄── (VF, IF) decision ◄─────────┘
//!                   │
//!                   ▼
//!        compile (clamp to legality) ──► simulate ──► reward
//! ```
//!
//! * [`compiler`] — the compile-and-run service over the `nvc-*` substrate
//!   crates (frontend, IR, vectorizer, machine model, Polly-lite);
//! * [`env`] — the contextual-bandit environment (§3.3 reward, §3.4
//!   compile-time penalty);
//! * [`framework`] — training and the pragma-injecting inference product;
//! * [`experiments`] — drivers that regenerate every figure of the paper
//!   (used by the `nv-bench` harness binaries);
//! * serving — [`NeuroVectorizer::serve`] moves a trained model into the
//!   long-lived `nvc-serve` daemon (`nvc serve` on the CLI): a sharded
//!   LRU decision cache plus batched policy inference behind a JSON-lines
//!   protocol. [`ServeConfig`] (a field of [`NvConfig`]) holds the knobs.
//!   The networked tier (`nvc hub`, `nvc-hub`) serves N named checkpoints
//!   over TCP with weighted A/B routing, hot-swap `reload`, and a
//!   persistent decision cache versioned by checkpoint hash
//!   ([`HubConfig`], [`NeuroVectorizer::hub_loader`]);
//! * [`cli`] — the shared argument parser every `nvc` subcommand uses
//!   (unknown flags are errors, not silently ignored).
//!
//! # Quickstart
//!
//! ```
//! use neurovectorizer::{NeuroVectorizer, NvConfig, VectorizeEnv};
//! use nvc_datasets::generator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train on a small synthetic pool (use NvConfig::paper() for the
//! // full-size setup).
//! let cfg = NvConfig::fast();
//! let mut env = VectorizeEnv::new(generator::generate(0, 16), cfg.target.clone(), &cfg.embed);
//! let mut nv = NeuroVectorizer::new(cfg);
//! nv.train(&mut env, 2);
//!
//! // Inference: inject pragmas into new code.
//! let out = nv.vectorize_source(
//!     "float a[256]; float b[256];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i]; } }",
//! )?;
//! assert!(out.contains("#pragma clang loop vectorize_width"));
//! # Ok(())
//! # }
//! ```

pub mod compiler;
pub mod env;
pub mod experiments;
pub mod framework;

pub mod cli;

pub use compiler::{CompileError, Compiler, LoopDecision, ProgramTiming, CALL_OVERHEAD_CYCLES};
pub use env::{LoopContext, VectorizeEnv, TIMEOUT_PENALTY};
pub use framework::{NeuroVectorizer, NvConfig};
pub use nvc_fleet::{
    serve_registry, ContentStore, FleetClient, FleetConfig, FleetResponse, RegistryClient,
    RegistryService,
};
pub use nvc_hub::{
    spawn_announcer, spawn_learner, AnnounceConfig, Hub, HubConfig, HubHandle, HubTransport,
    LearnConfig, LearnEvent, ModelSpec, ReportRecord,
};
pub use nvc_rl::ReplayEnv;
pub use nvc_serve::{run_daemon, ServeConfig, ServeHandle};
