//! Drivers that regenerate every figure of the paper.
//!
//! Each function returns plain data; the `nv-bench` harness binaries
//! print it in the paper's format, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison. Everything is deterministic given the
//! [`Scale`] seed.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Figure 1 (dot-product VF×IF grid) | [`fig1_dot_product_grid`] |
//! | Figure 2 (brute force vs baseline on the test suite) | [`fig2_bruteforce_suite`] |
//! | Figure 5 (hyperparameter sweep) | [`fig5_sweep`] |
//! | Figure 6 (action spaces) | [`fig6_action_spaces`] |
//! | Figure 7 (12 benchmarks × 7 methods) | [`fig7_comparison`] |
//! | Figure 8 (PolyBench) | [`fig8_polybench`] |
//! | Figure 9 (MiBench) | [`fig9_mibench`] |
//! | Headline numbers | [`headline_summary`] |

use serde::{Deserialize, Serialize};

use nvc_agents::{brute_force_best, DecisionTree, DecisionTreeConfig, NnsAgent, RandomAgent};
use nvc_datasets::{eval, generator, mibench, polybench, suite, Kernel};
use nvc_embed::{extract_path_contexts, PathSample};
use nvc_frontend::parse_statement;
use nvc_ir::LoweredLoop;
use nvc_machine::TargetConfig;
use nvc_polly::PollyConfig;
use nvc_rl::{ActionSpaceKind, IterStats};
use nvc_vectorizer::{ActionSpace, VectorDecision, Vectorizer};

use crate::compiler::{Compiler, LoopDecision};
use crate::env::VectorizeEnv;
use crate::framework::{NeuroVectorizer, NvConfig};

// ---------------------------------------------------------------------
// Scale
// ---------------------------------------------------------------------

/// Experiment sizing. The paper's full scale (5,000 training samples,
/// 500k steps) runs for hours on the original Ray cluster; the `bench`
/// scale keeps every qualitative result while fitting in minutes, and
/// `smoke` exists for the test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of generated training kernels.
    pub train_kernels: usize,
    /// PPO iterations.
    pub iterations: usize,
    /// Environment steps per iteration (PPO train batch).
    pub train_batch: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Test-suite scale: seconds.
    pub fn smoke() -> Self {
        Scale {
            train_kernels: 24,
            iterations: 8,
            train_batch: 192,
            seed: 17,
        }
    }

    /// Benchmark-harness scale: a few minutes end to end.
    pub fn bench() -> Self {
        Scale {
            train_kernels: 160,
            iterations: 30,
            train_batch: 512,
            seed: 17,
        }
    }
}

/// Builds the framework + training environment at a given scale and
/// trains it. Returns the trained framework, the environment and the
/// learning curve.
pub fn train_framework(scale: Scale) -> (NeuroVectorizer, VectorizeEnv, Vec<IterStats>) {
    let mut cfg = NvConfig::fast().with_seed(scale.seed);
    cfg.ppo.train_batch = scale.train_batch;
    let mut kernels = generator::generate(scale.seed, scale.train_kernels);
    // The §4.1 combined experiment runs the agent on Polly-transformed
    // code, so the training distribution must include tile-shaped loops:
    // append Polly-lite transforms of the nest-heavy kernels.
    let polly_cfg = PollyConfig::default();
    let mut extra = Vec::new();
    for k in kernels
        .iter()
        .filter(|k| k.family == "matmul" || k.family == "memset2d")
    {
        if let Ok((src, report)) = nvc_polly::optimize_source(&k.source, &polly_cfg) {
            if !report.is_noop() {
                let mut t = k.clone();
                t.name = format!("{}_polly", k.name);
                t.source = src;
                extra.push(t);
            }
        }
    }
    kernels.extend(extra);
    let mut env = VectorizeEnv::new(kernels, cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg);
    let stats = nv.train(&mut env, scale.iterations);
    (nv, env, stats)
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// Figure 1 data: kernel-level performance of every `(VF, IF)` on the
/// §2.1 dot product, normalized to the baseline cost model's choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridData {
    /// VF axis.
    pub vfs: Vec<u32>,
    /// IF axis.
    pub ifs: Vec<u32>,
    /// `normalized[vi][ii]` = baseline_time / time(vf, if).
    pub normalized: Vec<Vec<f64>>,
    /// What the baseline chose.
    pub baseline: VectorDecision,
    /// Best configuration and its normalized performance.
    pub best: (VectorDecision, f64),
    /// Baseline speedup over fully scalar code (paper: 2.6×).
    pub baseline_over_scalar: f64,
}

impl GridData {
    /// How many configurations beat the baseline (paper: 26 of 35).
    pub fn better_than_baseline(&self) -> usize {
        self.normalized
            .iter()
            .flatten()
            .filter(|&&x| x > 1.0)
            .count()
    }
}

/// Regenerates Figure 1.
pub fn fig1_dot_product_grid(target: &TargetConfig) -> GridData {
    let kernel = dot_product_kernel();
    let compiler = Compiler::new(target.clone());
    let baseline_t = compiler
        .run_baseline(&kernel)
        .expect("dot product compiles");
    let scalar_t = compiler.run_scalar(&kernel).expect("dot product compiles");
    let baseline_decision = baseline_decision_of(&compiler, &kernel);

    let vfs = target.vf_candidates();
    // Figure 1 sweeps IF up to 8 (7 × 5 = 35 points counting IF=1..8 plus
    // VF row 1): the paper's grid is VF ∈ {1..64} × IF ∈ {1..8}.
    let ifs: Vec<u32> = target
        .if_candidates()
        .into_iter()
        .filter(|&i| i <= 8)
        .collect();
    let mut normalized = Vec::new();
    let mut best = (VectorDecision::scalar(), 0.0);
    for &vf in &vfs {
        let mut row = Vec::new();
        for &ifc in &ifs {
            let t = compiler
                .run_with(&kernel, |_| {
                    LoopDecision::Pragma(VectorDecision::new(vf, ifc))
                })
                .expect("compiles");
            let norm = baseline_t.total_cycles / t.total_cycles;
            if norm > best.1 {
                best = (VectorDecision::new(vf, ifc), norm);
            }
            row.push(norm);
        }
        normalized.push(row);
    }
    GridData {
        vfs,
        ifs,
        normalized,
        baseline: baseline_decision,
        best,
        baseline_over_scalar: scalar_t.total_cycles / baseline_t.total_cycles,
    }
}

fn dot_product_kernel() -> Kernel {
    Kernel::new(
        "dot_product",
        "motivation",
        "int vec[512] __attribute__((aligned(16)));
int kernel() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}",
        nvc_ir::ParamEnv::new(),
    )
}

fn baseline_decision_of(compiler: &Compiler, kernel: &Kernel) -> VectorDecision {
    let loops = compiler.front_end(kernel).expect("front end");
    compiler.vectorizer().baseline_decision(&loops[0].ir)
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

/// One suite entry: kernel name and the brute-force optimum normalized to
/// the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteEntry {
    /// Kernel name.
    pub name: String,
    /// Best achievable speedup over the baseline decision.
    pub best_over_baseline: f64,
}

/// Regenerates Figure 2: exhaustive search over the vectorizer test
/// suite.
pub fn fig2_bruteforce_suite(target: &TargetConfig) -> Vec<SuiteEntry> {
    let compiler = Compiler::new(target.clone());
    let space = ActionSpace::for_target(target);
    suite::llvm_suite()
        .into_iter()
        .filter_map(|k| {
            let baseline = compiler.run_baseline(&k).ok()?.total_cycles;
            let mut best = f64::INFINITY;
            for d in space.iter() {
                let t = compiler
                    .run_with(&k, |_| LoopDecision::Pragma(d))
                    .ok()?
                    .total_cycles;
                if t < best {
                    best = t;
                }
            }
            Some(SuiteEntry {
                name: k.name.clone(),
                best_over_baseline: baseline / best,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 5 and 6
// ---------------------------------------------------------------------

/// A labelled learning curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Legend label (e.g. "lr=5e-5").
    pub label: String,
    /// Per-iteration statistics.
    pub points: Vec<IterStats>,
}

fn run_sweep_config(scale: Scale, cfg: NvConfig, label: String) -> SweepSeries {
    let kernels = generator::generate(scale.seed, scale.train_kernels);
    let mut env = VectorizeEnv::new(kernels, cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg);
    let points = nv.train(&mut env, scale.iterations);
    SweepSeries { label, points }
}

/// Regenerates Figure 5: learning-rate, architecture and batch-size
/// sweeps. The axes match the paper (lr ∈ {5e-5, 5e-4, 5e-3},
/// FCNN ∈ {64×64, 128×128, 256×256}, batch ∈ {500, 1000, 4000}); batch
/// sizes are divided by 8 at `bench`/`smoke` scale (see EXPERIMENTS.md).
pub fn fig5_sweep(scale: Scale) -> Vec<SweepSeries> {
    let mut out = Vec::new();
    // Learning rates (paper values).
    for lr in [5e-5f32, 5e-4, 5e-3] {
        let mut cfg = NvConfig::fast().with_seed(scale.seed);
        cfg.ppo.train_batch = scale.train_batch;
        cfg.ppo.lr = lr;
        out.push(run_sweep_config(scale, cfg, format!("lr={lr:.0e}")));
    }
    // Architectures (paper values).
    for hidden in [vec![64, 64], vec![128, 128], vec![256, 256]] {
        let mut cfg = NvConfig::fast().with_seed(scale.seed);
        cfg.ppo.train_batch = scale.train_batch;
        cfg.ppo.hidden = hidden.clone();
        out.push(run_sweep_config(
            scale,
            cfg,
            format!("fcnn={}x{}", hidden[0], hidden[1]),
        ));
    }
    // Batch sizes (paper values ÷ 8 at reduced scale).
    for batch in [500usize, 1000, 4000] {
        let mut cfg = NvConfig::fast().with_seed(scale.seed);
        cfg.ppo.train_batch = (batch / 8).max(32);
        out.push(run_sweep_config(scale, cfg, format!("batch={batch}")));
    }
    out
}

/// Regenerates Figure 6: discrete vs continuous action spaces.
pub fn fig6_action_spaces(scale: Scale) -> Vec<SweepSeries> {
    [
        (ActionSpaceKind::Discrete, "discrete"),
        (ActionSpaceKind::Continuous1D, "continuous-1d"),
        (ActionSpaceKind::Continuous2D, "continuous-2d"),
    ]
    .into_iter()
    .map(|(kind, label)| {
        let mut cfg = NvConfig::fast().with_seed(scale.seed);
        cfg.ppo.train_batch = scale.train_batch;
        cfg.ppo.action_space = kind;
        run_sweep_config(scale, cfg, label.to_string())
    })
    .collect()
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Per-method speedups over the baseline on each benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonData {
    /// Benchmark names (rows).
    pub benchmarks: Vec<String>,
    /// Method names (columns), in plotting order.
    pub methods: Vec<String>,
    /// `speedups[m][b]` = method m's speedup over baseline on benchmark b.
    pub speedups: Vec<Vec<f64>>,
}

impl ComparisonData {
    /// Geometric-mean speedup of a method across benchmarks.
    pub fn average(&self, method: &str) -> f64 {
        let Some(mi) = self.methods.iter().position(|m| m == method) else {
            return f64::NAN;
        };
        let xs = &self.speedups[mi];
        (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
    }
}

/// Helper: the RL decision for one lowered loop.
fn rl_decide(nv: &NeuroVectorizer, space: &ActionSpace, l: &LoweredLoop) -> LoopDecision {
    match parse_statement(&l.nest_text) {
        Ok(stmt) => {
            let sample = PathSample::from_contexts(
                &extract_path_contexts(&stmt, nv.config().embed.max_paths),
                &nv.config().embed,
            );
            LoopDecision::Pragma(nv.decide(&sample, space))
        }
        Err(_) => LoopDecision::Baseline,
    }
}

/// Helper: per-loop embedding for the supervised agents.
fn embed_loop(nv: &NeuroVectorizer, l: &LoweredLoop) -> Option<Vec<f32>> {
    let stmt = parse_statement(&l.nest_text).ok()?;
    let sample = PathSample::from_contexts(
        &extract_path_contexts(&stmt, nv.config().embed.max_paths),
        &nv.config().embed,
    );
    Some(nv.encode(&sample))
}

/// Regenerates Figure 7: the trained framework plus random search, Polly,
/// NNS, decision trees and brute force on the 12 held-out benchmarks.
pub fn fig7_comparison(
    nv: &NeuroVectorizer,
    train_env: &VectorizeEnv,
    benchmarks: &[Kernel],
) -> ComparisonData {
    let target = nv.config().target.clone();
    let compiler = Compiler::new(target.clone());
    let polly_compiler = Compiler::new(target.clone()).with_polly(PollyConfig::default());
    let space = ActionSpace::for_target(&target);
    let dims = nvc_rl::ActionDims {
        n_vf: space.vfs.len(),
        n_if: space.ifs.len(),
    };

    // Supervised agents: trained embeddings + brute-force labels from the
    // training environment (§3.5).
    let labels = train_env.brute_force_labels();
    let mut nns = NnsAgent::new();
    let mut dt_features = Vec::new();
    let mut dt_labels = Vec::new();
    // One segmented encoder forward over the whole training pool — the
    // same entry point training and serving batch through.
    let pool: Vec<&PathSample> = train_env.contexts().iter().map(|c| &c.sample).collect();
    for (i, e) in nv.encode_batch(&pool).into_iter().enumerate() {
        nns.insert(e.clone(), labels[i]);
        dt_features.push(e);
        dt_labels.push(labels[i].0 * dims.n_if + labels[i].1);
    }
    let tree = DecisionTree::fit(&dt_features, &dt_labels, &DecisionTreeConfig::default());

    let mut random = RandomAgent::new(nv.config().seed.wrapping_add(1));

    let methods = vec![
        "baseline".to_string(),
        "random".to_string(),
        "polly".to_string(),
        "decision_tree".to_string(),
        "nns".to_string(),
        "rl".to_string(),
        "brute_force".to_string(),
    ];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut names = Vec::new();

    for k in benchmarks {
        let Ok(base) = compiler.run_baseline(k) else {
            continue;
        };
        names.push(k.name.clone());
        let base_cycles = base.total_cycles;
        let speedup = |t: f64| base_cycles / t;

        // baseline
        speedups[0].push(1.0);
        // random
        let t_rand = compiler
            .run_with(k, |_| {
                let (v, i) = random.act(dims);
                LoopDecision::Pragma(space.decision_from_pair(v, i))
            })
            .expect("random compiles");
        speedups[1].push(speedup(t_rand.total_cycles));
        // polly (baseline decisions on the transformed source)
        let t_polly = polly_compiler
            .run_baseline(k)
            .map(|t| t.total_cycles)
            .unwrap_or(base_cycles);
        speedups[2].push(speedup(t_polly));
        // decision tree
        let t_dt = compiler
            .run_with(k, |l| match embed_loop(nv, l) {
                Some(e) => {
                    let flat = tree.predict(&e);
                    LoopDecision::Pragma(
                        space.decision_from_pair(flat / dims.n_if, flat % dims.n_if),
                    )
                }
                None => LoopDecision::Baseline,
            })
            .expect("dt compiles");
        speedups[3].push(speedup(t_dt.total_cycles));
        // nns
        let t_nns = compiler
            .run_with(k, |l| match embed_loop(nv, l) {
                Some(e) => {
                    let (v, i) = nns.predict(&e);
                    LoopDecision::Pragma(space.decision_from_pair(v, i))
                }
                None => LoopDecision::Baseline,
            })
            .expect("nns compiles");
        speedups[4].push(speedup(t_nns.total_cycles));
        // rl
        let t_rl = compiler
            .run_with(k, |l| rl_decide(nv, &space, l))
            .expect("rl compiles");
        speedups[5].push(speedup(t_rl.total_cycles));
        // brute force: per-loop independent search.
        let t_bf = compiler
            .run_with(k, |l| {
                let (best, _) = brute_force_best(dims, |(v, i)| {
                    let d = space.decision_from_pair(v, i);
                    let c = compiler.vectorizer().compile(&l.ir, d);
                    -c.nest_cycles(&l.ir)
                });
                LoopDecision::Pragma(space.decision_from_pair(best.0, best.1))
            })
            .expect("bf compiles");
        speedups[6].push(speedup(t_bf.total_cycles));
    }

    ComparisonData {
        benchmarks: names,
        methods,
        speedups,
    }
}

// ---------------------------------------------------------------------
// Figures 8 and 9
// ---------------------------------------------------------------------

/// Regenerates Figure 8: PolyBench under baseline / Polly / RL /
/// RL+Polly.
pub fn fig8_polybench(nv: &NeuroVectorizer) -> ComparisonData {
    transfer_comparison(nv, &polybench::polybench(), true)
}

/// Regenerates Figure 9: MiBench-style programs under baseline / Polly /
/// RL.
pub fn fig9_mibench(nv: &NeuroVectorizer) -> ComparisonData {
    transfer_comparison(nv, &mibench::mibench(), false)
}

fn transfer_comparison(
    nv: &NeuroVectorizer,
    kernels: &[Kernel],
    include_combined: bool,
) -> ComparisonData {
    let target = nv.config().target.clone();
    let compiler = Compiler::new(target.clone());
    let polly_compiler = Compiler::new(target.clone()).with_polly(PollyConfig::default());
    let space = ActionSpace::for_target(&target);

    let mut methods = vec![
        "baseline".to_string(),
        "polly".to_string(),
        "rl".to_string(),
    ];
    if include_combined {
        methods.push("rl+polly".to_string());
    }
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut names = Vec::new();

    for k in kernels {
        let Ok(base) = compiler.run_baseline(k) else {
            continue;
        };
        names.push(k.name.clone());
        let base_cycles = base.total_cycles;
        speedups[0].push(1.0);
        let t_polly = polly_compiler
            .run_baseline(k)
            .map(|t| t.total_cycles)
            .unwrap_or(base_cycles);
        speedups[1].push(base_cycles / t_polly);
        let t_rl = compiler
            .run_with(k, |l| rl_decide(nv, &space, l))
            .expect("rl compiles");
        speedups[2].push(base_cycles / t_rl.total_cycles);
        if include_combined {
            let t_combo = polly_compiler
                .run_with(k, |l| rl_decide(nv, &space, l))
                .map(|t| t.total_cycles)
                .unwrap_or(t_rl.total_cycles);
            speedups[3].push(base_cycles / t_combo);
        }
    }

    ComparisonData {
        benchmarks: names,
        methods,
        speedups,
    }
}

// ---------------------------------------------------------------------
// Headline numbers
// ---------------------------------------------------------------------

/// The abstract's headline numbers, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Geomean RL speedup on the Figure-7 benchmarks (paper: 2.67×).
    pub rl_average: f64,
    /// Geomean brute-force speedup (the oracle).
    pub brute_force_average: f64,
    /// RL as a fraction of brute force (paper: 97%).
    pub rl_vs_brute_force: f64,
    /// Min and max per-suite average speedup (paper: 1.29×–4.73×).
    pub range: (f64, f64),
}

/// Computes the headline numbers from the Figure 7–9 data.
pub fn headline_summary(
    fig7: &ComparisonData,
    fig8: &ComparisonData,
    fig9: &ComparisonData,
) -> Headline {
    let rl7 = fig7.average("rl");
    let bf = fig7.average("brute_force");
    let rl8 = fig8.average("rl+polly").max(fig8.average("rl"));
    let rl9 = fig9.average("rl");
    let mut suite_avgs = [rl7, rl8, rl9];
    suite_avgs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Headline {
        rl_average: rl7,
        brute_force_average: bf,
        rl_vs_brute_force: rl7 / bf,
        range: (suite_avgs[0], suite_avgs[2]),
    }
}

/// The 12 held-out benchmarks (re-exported for harnesses).
pub fn figure7_benchmarks() -> Vec<Kernel> {
    eval::eval_benchmarks()
}

// ---------------------------------------------------------------------
// Extensions (§3.4 reward shaping, §5 ranking network)
// ---------------------------------------------------------------------

/// §5 extension: trains the reward-ranking network (a learned cost model)
/// on the training pool's brute-force grid and evaluates it on the
/// Figure-7 benchmarks next to the RL policy.
pub fn ext_ranker_comparison(
    nv: &NeuroVectorizer,
    train_env: &VectorizeEnv,
    benchmarks: &[Kernel],
    seed: u64,
) -> ComparisonData {
    use nvc_agents::{Ranker, RankerConfig};
    use rand::SeedableRng;

    let target = nv.config().target.clone();
    let compiler = Compiler::new(target.clone());
    let space = ActionSpace::for_target(&target);
    let dims = nvc_rl::ActionDims {
        n_vf: space.vfs.len(),
        n_if: space.ifs.len(),
    };

    // Label the full grid of the training pool: (embedding, action) →
    // reward. This is the supervised dataset the §5 network needs.
    let mut data = Vec::new();
    let pool: Vec<&PathSample> = train_env.contexts().iter().map(|c| &c.sample).collect();
    for (i, e) in nv.encode_batch(&pool).into_iter().enumerate() {
        for v in 0..dims.n_vf {
            for f in 0..dims.n_if {
                let r = train_env
                    .reward_of_decision(i, space.decision_from_pair(v, f))
                    .max(-2.0); // clip outliers for regression stability
                data.push((e.clone(), v * dims.n_if + f, r));
            }
        }
    }
    let cfg = RankerConfig {
        input_dim: nv.config().embed.code_dim,
        hidden: 64,
        dims,
        lr: 5e-3,
        epochs: 30,
        minibatch: 64,
    };
    let mut ranker = Ranker::new(&cfg, seed);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    ranker.fit(&data, &mut rng);

    let methods = vec![
        "baseline".to_string(),
        "ranker".to_string(),
        "rl".to_string(),
    ];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut names = Vec::new();
    for k in benchmarks {
        let Ok(base) = compiler.run_baseline(k) else {
            continue;
        };
        names.push(k.name.clone());
        speedups[0].push(1.0);
        let t_rk = compiler
            .run_with(k, |l| match embed_loop(nv, l) {
                Some(e) => {
                    let (v, i) = ranker.predict(&e);
                    LoopDecision::Pragma(space.decision_from_pair(v, i))
                }
                None => LoopDecision::Baseline,
            })
            .expect("ranker compiles");
        speedups[1].push(base.total_cycles / t_rk.total_cycles);
        let t_rl = compiler
            .run_with(k, |l| rl_decide(nv, &space, l))
            .expect("rl compiles");
        speedups[2].push(base.total_cycles / t_rl.total_cycles);
    }
    ComparisonData {
        benchmarks: names,
        methods,
        speedups,
    }
}

/// One row of the §3.4 reward-shaping ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapingRow {
    /// Compile-time penalty weight.
    pub weight: f64,
    /// Mean greedy execution reward after training.
    pub exec_reward: f64,
    /// Mean compile time of the greedy decisions, normalized to baseline.
    pub compile_ratio: f64,
}

/// §3.4 extension: sweeps the compile-time penalty weight and reports the
/// execution-reward / compile-time trade-off the paper describes.
pub fn ext_reward_shaping(scale: Scale, weights: &[f64]) -> Vec<ShapingRow> {
    let mut out = Vec::new();
    for &w in weights {
        let mut cfg = NvConfig::fast().with_seed(scale.seed);
        cfg.ppo.train_batch = scale.train_batch;
        let kernels = generator::generate(scale.seed, scale.train_kernels);
        let mut env =
            VectorizeEnv::new(kernels, cfg.target.clone(), &cfg.embed).with_compile_weight(w);
        let mut nv = NeuroVectorizer::new(cfg);
        nv.train(&mut env, scale.iterations);

        // Greedy evaluation: pure execution reward + compile ratio.
        let plain = VectorizeEnv::new(
            env.kernels().to_vec(),
            nv.config().target.clone(),
            &nv.config().embed,
        );
        let vz = Vectorizer::new(nv.config().target.clone());
        let mut exec = 0.0;
        let mut compile_ratio = 0.0;
        for (i, ctx) in plain.contexts().iter().enumerate() {
            let d = nv.decide(&ctx.sample, plain.space());
            exec += plain.reward_of_decision(i, d);
            let c = vz.compile(&ctx.lowered.ir, d);
            compile_ratio += c.compile_ms / ctx.baseline_compile_ms;
        }
        let n = plain.contexts().len() as f64;
        out.push(ShapingRow {
            weight: w,
            exec_reward: exec / n,
            compile_ratio: compile_ratio / n,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_paper() {
        let data = fig1_dot_product_grid(&TargetConfig::i7_8559u());
        assert_eq!(data.vfs.len(), 7);
        assert_eq!(data.ifs.len(), 4); // IF ∈ {1,2,4,8}
                                       // Paper: baseline picks (4,2); most configurations beat it; best
                                       // uses wide factors; baseline is ~2.6× over scalar.
        assert_eq!(data.baseline, VectorDecision::new(4, 2));
        assert!(
            data.better_than_baseline() >= 14,
            "only {} of 28 beat baseline",
            data.better_than_baseline()
        );
        assert!(data.best.1 > 1.0 && data.best.1 < 2.0);
        assert!((2.0..3.2).contains(&data.baseline_over_scalar));
    }

    #[test]
    fn fig2_bruteforce_never_loses() {
        let entries = fig2_bruteforce_suite(&TargetConfig::i7_8559u());
        assert!(entries.len() >= 14);
        for e in &entries {
            assert!(
                e.best_over_baseline >= 1.0 - 1e-9,
                "{}: brute force lost ({})",
                e.name,
                e.best_over_baseline
            );
        }
        // And improvements exist (paper: up to ~1.5×).
        let max = entries
            .iter()
            .map(|e| e.best_over_baseline)
            .fold(0.0, f64::max);
        assert!(max > 1.1, "no headroom found: max={max}");
    }

    #[test]
    fn comparison_average_is_geomean() {
        let d = ComparisonData {
            benchmarks: vec!["a".into(), "b".into()],
            methods: vec!["m".into()],
            speedups: vec![vec![1.0, 4.0]],
        };
        assert!((d.average("m") - 2.0).abs() < 1e-9);
        assert!(d.average("missing").is_nan());
    }
}
