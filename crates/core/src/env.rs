//! The RL environment: loops as contexts, pragma injection as actions,
//! normalized execution-time improvement as reward.
//!
//! §3.3: `reward = (t_baseline − t_RL) / t_baseline`, with a −9 penalty
//! when compilation exceeds ten times the baseline compile time (§3.4).
//! Each context is one innermost loop from the kernel pool; rewards are
//! deterministic, so they are memoized — re-visiting an action costs
//! nothing, exactly like caching compiled binaries would.

use std::collections::HashMap;

use parking_lot::Mutex;

use nvc_datasets::Kernel;
use nvc_embed::{extract_path_contexts, EmbedConfig, PathSample};
use nvc_frontend::parse_statement;
use nvc_ir::LoweredLoop;
use nvc_machine::TargetConfig;
use nvc_rl::{ActionDims, BanditEnv};
use nvc_vectorizer::{ActionSpace, CompileOutcome, VectorDecision, Vectorizer};

/// Penalty reward for compile timeouts (§3.4: "equivalent to assuming it
/// takes ten times the execution time of the baseline").
pub const TIMEOUT_PENALTY: f64 = -9.0;

/// One trainable context: a loop plus its pre-computed observation and
/// baseline measurements.
#[derive(Debug, Clone)]
pub struct LoopContext {
    /// Kernel the loop came from.
    pub kernel_index: usize,
    /// The lowered loop.
    pub lowered: LoweredLoop,
    /// code2vec input (hashed path contexts of the outermost nest text).
    pub sample: PathSample,
    /// Baseline nest cycles (the reward denominator).
    pub baseline_cycles: f64,
    /// Baseline compile time (the timeout budget reference).
    pub baseline_compile_ms: f64,
}

/// The contextual-bandit environment over a pool of kernels.
#[derive(Debug)]
pub struct VectorizeEnv {
    vectorizer: Vectorizer,
    space: ActionSpace,
    contexts: Vec<LoopContext>,
    kernels: Vec<Kernel>,
    reward_cache: Mutex<HashMap<(usize, usize, usize), f64>>,
    steps_taken: u64,
    compile_weight: f64,
}

impl VectorizeEnv {
    /// Builds the environment: parses and lowers every kernel, extracts
    /// every innermost loop, embeds its nest text and measures the
    /// baseline.
    ///
    /// Kernels that fail the front end are skipped (real build systems
    /// skip files that do not compile).
    pub fn new(kernels: Vec<Kernel>, target: TargetConfig, embed_cfg: &EmbedConfig) -> Self {
        let vectorizer = Vectorizer::new(target.clone());
        let space = ActionSpace::for_target(&target);
        let mut contexts = Vec::new();
        for (ki, kernel) in kernels.iter().enumerate() {
            let compiler = crate::compiler::Compiler::new(target.clone());
            let Ok(loops) = compiler.front_end(kernel) else {
                continue;
            };
            for lowered in loops {
                let sample = match parse_statement(&lowered.nest_text) {
                    Ok(stmt) => PathSample::from_contexts(
                        &extract_path_contexts(&stmt, embed_cfg.max_paths),
                        embed_cfg,
                    ),
                    Err(_) => continue,
                };
                let baseline = vectorizer.compile_baseline(&lowered.ir);
                contexts.push(LoopContext {
                    kernel_index: ki,
                    baseline_cycles: baseline.nest_cycles(&lowered.ir).max(1.0),
                    baseline_compile_ms: baseline.compile_ms,
                    lowered,
                    sample,
                });
            }
        }
        VectorizeEnv {
            vectorizer,
            space,
            contexts,
            kernels,
            reward_cache: Mutex::new(HashMap::new()),
            steps_taken: 0,
            compile_weight: 0.0,
        }
    }

    /// Enables the §3.4 extension: "one can allow a long compilation time
    /// but penalize for it. The reward can also be defined as a
    /// combination of the compilation time, execution time…". With weight
    /// `w`, the reward is reduced by `w × max(0, compile/baseline − 1)`,
    /// so the agent trades execution speed against compile cost instead
    /// of only facing the hard 10× cliff.
    pub fn with_compile_weight(mut self, w: f64) -> Self {
        self.compile_weight = w;
        self.reward_cache.lock().clear();
        self
    }

    /// The loop contexts (read-only).
    pub fn contexts(&self) -> &[LoopContext] {
        &self.contexts
    }

    /// The kernels backing the environment.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// The action space in use.
    pub fn space(&self) -> &ActionSpace {
        &self.space
    }

    /// Total environment steps taken (compilations, §4's x-axis).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// The reward of `decision` on context `idx` (memoized).
    pub fn reward_of_decision(&self, idx: usize, decision: VectorDecision) -> f64 {
        let key = (idx, decision.vf as usize, decision.if_ as usize);
        if let Some(r) = self.reward_cache.lock().get(&key) {
            return *r;
        }
        let ctx = &self.contexts[idx];
        let compiled = self.vectorizer.compile(&ctx.lowered.ir, decision);
        let outcome = CompileOutcome::from_times(compiled.compile_ms, ctx.baseline_compile_ms);
        let r = if outcome.timed_out() {
            TIMEOUT_PENALTY
        } else {
            let t = compiled.nest_cycles(&ctx.lowered.ir);
            // The penalty is defined as "equivalent to assuming it takes
            // ten times the execution time of the baseline" (§3.4), so −9
            // also floors the execution-time reward: nothing is treated as
            // worse than a timeout.
            let exec = ((ctx.baseline_cycles - t) / ctx.baseline_cycles).max(TIMEOUT_PENALTY);
            let compile_pen = self.compile_weight
                * (compiled.compile_ms / ctx.baseline_compile_ms - 1.0).max(0.0);
            (exec - compile_pen).max(TIMEOUT_PENALTY)
        };
        self.reward_cache.lock().insert(key, r);
        r
    }

    /// Brute-force labels: best `(vf_idx, if_idx)` per context — the
    /// supervision NNS/decision trees need (§3.5).
    pub fn brute_force_labels(&self) -> Vec<(usize, usize)> {
        (0..self.contexts.len())
            .map(|i| {
                nvc_agents::brute_force_best(self.action_dims(), |(v, f)| {
                    self.reward_of_decision(i, self.space.decision_from_pair(v, f))
                })
                .0
            })
            .collect()
    }
}

impl BanditEnv for VectorizeEnv {
    fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    fn context(&self, idx: usize) -> &PathSample {
        &self.contexts[idx].sample
    }

    fn action_dims(&self) -> ActionDims {
        ActionDims {
            n_vf: self.space.vfs.len(),
            n_if: self.space.ifs.len(),
        }
    }

    fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64 {
        self.steps_taken += 1;
        let decision = self.space.decision_from_pair(action.0, action.1);
        self.reward_of_decision(idx, decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_datasets::generator;

    fn small_env() -> VectorizeEnv {
        VectorizeEnv::new(
            generator::generate(3, 8),
            TargetConfig::i7_8559u(),
            &EmbedConfig::fast(),
        )
    }

    #[test]
    fn env_builds_contexts_for_all_loops() {
        let env = small_env();
        assert!(env.num_contexts() >= 8, "got {}", env.num_contexts());
        for c in env.contexts() {
            assert!(c.baseline_cycles > 0.0);
            assert!(!c.sample.is_empty());
        }
    }

    #[test]
    fn baseline_action_has_zero_reward() {
        // Choosing exactly what the baseline chooses must give reward ≈ 0.
        let env = small_env();
        for i in 0..env.num_contexts() {
            let d = env.contexts()[i].lowered.ir.clone();
            let baseline = Vectorizer::new(TargetConfig::i7_8559u()).baseline_decision(&d);
            let r = env.reward_of_decision(i, baseline);
            assert!(
                r.abs() < 1e-9,
                "context {i}: baseline reward should be 0, got {r}"
            );
        }
    }

    #[test]
    fn rewards_are_bounded_and_cached() {
        let mut env = small_env();
        let dims = env.action_dims();
        for i in 0..env.num_contexts().min(4) {
            for v in 0..dims.n_vf {
                for f in 0..dims.n_if {
                    let r = env.reward(i, (v, f));
                    assert!(
                        (TIMEOUT_PENALTY..=1.0).contains(&r),
                        "reward out of range: {r}"
                    );
                    // Cached: second call returns the identical value.
                    let r2 = env.reward(i, (v, f));
                    assert_eq!(r, r2);
                }
            }
        }
        assert!(env.steps_taken() > 0);
    }

    #[test]
    fn brute_force_labels_maximize_reward() {
        let env = small_env();
        let labels = env.brute_force_labels();
        let dims = env.action_dims();
        for (i, &(bv, bi)) in labels.iter().enumerate().take(4) {
            let best = env.reward_of_decision(i, env.space().decision_from_pair(bv, bi));
            for v in 0..dims.n_vf {
                for f in 0..dims.n_if {
                    let r = env.reward_of_decision(i, env.space().decision_from_pair(v, f));
                    assert!(r <= best + 1e-9);
                }
            }
        }
    }

    #[test]
    fn compile_weight_penalizes_expensive_factors() {
        let env = small_env().with_compile_weight(0.5);
        let plain = small_env();
        // The most aggressive factor compiles slowest; shaping must lower
        // its reward relative to the unshaped environment on at least one
        // context.
        let big = VectorDecision::new(64, 16);
        let mut shaped_lower = false;
        for i in 0..plain.num_contexts() {
            let r_shaped = env.reward_of_decision(i, big);
            let r_plain = plain.reward_of_decision(i, big);
            assert!(r_shaped <= r_plain + 1e-12);
            if r_shaped < r_plain - 1e-9 {
                shaped_lower = true;
            }
        }
        assert!(shaped_lower, "shaping had no effect anywhere");
        // Baseline-equal decisions are unaffected (no extra compile time).
        let d = Vectorizer::new(TargetConfig::i7_8559u())
            .baseline_decision(&plain.contexts()[0].lowered.ir);
        assert_eq!(env.reward_of_decision(0, d), plain.reward_of_decision(0, d));
    }

    #[test]
    fn contexts_embed_distinctly_across_families() {
        let env = small_env();
        let mut distinct = std::collections::HashSet::new();
        for c in env.contexts() {
            distinct.insert(format!("{:?}", c.sample));
        }
        assert!(distinct.len() > env.num_contexts() / 2);
    }
}
