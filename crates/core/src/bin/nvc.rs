//! `nvc` — the NeuroVectorizer command-line tool.
//!
//! The deployment story of §4.2: train once, ship the weights, and use the
//! model as a drop-in pragma injector at build time.
//!
//! ```text
//! nvc train --kernels 160 --iterations 30 --seed 17 --out model.ckpt
//! nvc vectorize file.c --model model.ckpt        # annotated source on stdout
//! nvc inspect file.c [--n 1024]                  # per-loop analysis report
//! nvc serve --model model.ckpt                   # JSON-lines daemon on stdin/stdout
//! ```
//!
//! `serve` keeps the model warm and answers one JSON request per line
//! (see `nvc-serve` for the protocol): repeated loop shapes hit a sharded
//! LRU decision cache, cache misses coalesce into batched policy forward
//! passes.

use std::io::Read;
use std::process::ExitCode;

use neurovectorizer::{Compiler, NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::{generator, Kernel};
use nvc_ir::ParamEnv;
use nvc_vectorizer::ActionSpace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("vectorize") => cmd_vectorize(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  nvc train [--kernels N] [--iterations N] [--seed N] --out FILE\n  nvc vectorize FILE.c [--model FILE]\n  nvc inspect FILE.c [--n VALUE]\n  nvc serve [--model FILE] [--workers N] [--batch N] [--flush-us N] [--cache N] [--shards N]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nvc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_train(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let kernels: usize = flag(args, "--kernels").map_or(Ok(96), |v| v.parse())?;
    let iterations: usize = flag(args, "--iterations").map_or(Ok(20), |v| v.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(17), |v| v.parse())?;
    let out = flag(args, "--out").ok_or("train requires --out FILE")?;

    let cfg = NvConfig::fast().with_seed(seed);
    let pool = generator::generate(seed, kernels);
    eprintln!(
        "training on {} kernels, {iterations} iterations…",
        pool.len()
    );
    let mut env = VectorizeEnv::new(pool, cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg);
    let stats = nv.train(&mut env, iterations);
    for s in stats.iter().step_by(iterations.div_ceil(10).max(1)) {
        eprintln!(
            "  steps {:>7}  reward_mean {:+.3}  loss {:+.3}",
            s.steps, s.reward_mean, s.loss
        );
    }
    std::fs::write(&out, nv.checkpoint())?;
    eprintln!("wrote checkpoint to {out}");
    Ok(())
}

fn read_source(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        Ok(std::fs::read_to_string(path)?)
    }
}

fn cmd_vectorize(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let file = args
        .iter()
        .find(|a| !a.starts_with("--") && flag_value_position(args, a))
        .ok_or("vectorize requires a source file (or `-` for stdin)")?;
    let source = read_source(file)?;
    let mut nv = NeuroVectorizer::new(NvConfig::fast());
    if let Some(model) = flag(args, "--model") {
        let ckpt = std::fs::read_to_string(&model)?;
        nv.restore(&ckpt)?;
    }
    let annotated = nv.vectorize_source(&source)?;
    println!("{annotated}");
    Ok(())
}

/// True when `a` is a positional argument (not the value of a flag).
fn flag_value_position(args: &[String], a: &String) -> bool {
    match args.iter().position(|x| x == a) {
        Some(0) => true,
        Some(i) => !args[i - 1].starts_with("--"),
        None => true,
    }
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = NvConfig::fast();
    if let Some(n) = flag(args, "--workers") {
        cfg.serve.workers = n.parse::<usize>()?.max(1);
    }
    if let Some(n) = flag(args, "--batch") {
        cfg.serve.batch_size = n.parse::<usize>()?.max(1);
    }
    if let Some(n) = flag(args, "--flush-us") {
        cfg.serve.flush_deadline_us = n.parse()?;
    }
    if let Some(n) = flag(args, "--cache") {
        cfg.serve.cache_capacity = n.parse()?;
    }
    if let Some(n) = flag(args, "--shards") {
        cfg.serve.cache_shards = n.parse::<usize>()?.max(1);
    }
    let mut nv = NeuroVectorizer::new(cfg);
    if let Some(model) = flag(args, "--model") {
        let ckpt = std::fs::read_to_string(&model)?;
        nv.restore(&ckpt)?;
        eprintln!("nvc serve: restored weights from {model}");
    } else {
        eprintln!("nvc serve: WARNING — serving an untrained model (pass --model FILE)");
    }
    let serve_cfg = nv.config().serve.clone();
    eprintln!(
        "nvc serve: ready ({} workers, batch {}, flush {}µs, cache {} entries / {} shards); one JSON request per line",
        serve_cfg.workers,
        serve_cfg.batch_size,
        serve_cfg.flush_deadline_us,
        serve_cfg.cache_capacity,
        serve_cfg.cache_shards
    );
    let handle = nv.serve();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    neurovectorizer::run_daemon(&handle, stdin.lock(), &mut stdout)?;
    eprintln!("nvc serve: shutting down");
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let file = args
        .iter()
        .find(|a| !a.starts_with("--") && flag_value_position(args, a))
        .ok_or("inspect requires a source file")?;
    let source = read_source(file)?;
    let mut env = ParamEnv::new();
    if let Some(n) = flag(args, "--n") {
        env = env.with("n", n.parse()?);
    }
    let kernel = Kernel::new(file.clone(), "cli", source, env);
    let compiler = Compiler::default();
    let loops = compiler.front_end(&kernel)?;
    let space = ActionSpace::for_target(compiler.target());
    println!("{} innermost loop(s)\n", loops.len());
    for l in &loops {
        println!(
            "loop #{} in `{}` (line {}):",
            l.loop_index, l.function, l.header_line
        );
        println!("  trip: {:?}, step {}", l.ir.trip, l.ir.step);
        println!(
            "  accesses: {} ({} loads, {} stores), reductions: {}",
            l.ir.accesses.len(),
            l.ir.loads().count(),
            l.ir.stores().count(),
            l.ir.reductions.len()
        );
        if let Some(b) = &l.ir.blocker {
            println!("  not vectorizable: {b}");
        } else {
            println!("  legal max VF: {}", nvc_ir::legal_max_vf(&l.ir));
        }
        let baseline = compiler.vectorizer().baseline_decision(&l.ir);
        let base = compiler.vectorizer().compile(&l.ir, baseline);
        println!(
            "  baseline: {} → {:.0} cycles/execution",
            baseline, base.timing.cycles
        );
        // Best by exhaustive search.
        let mut best = (baseline, base.timing.cycles);
        for d in space.iter() {
            let c = compiler.vectorizer().compile(&l.ir, d);
            if c.timing.cycles < best.1 {
                best = (c.decision, c.timing.cycles);
            }
        }
        println!(
            "  best:     {} → {:.0} cycles/execution ({:.2}x)",
            best.0,
            best.1,
            base.timing.cycles / best.1
        );
        println!();
    }
    Ok(())
}
