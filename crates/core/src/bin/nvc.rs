//! `nvc` — the NeuroVectorizer command-line tool.
//!
//! The deployment story of §4.2: train once, ship the weights, and use the
//! model as a drop-in pragma injector at build time.
//!
//! ```text
//! nvc train --kernels 160 --iterations 30 --seed 17 --out model.ckpt
//! nvc vectorize file.c --model model.ckpt        # annotated source on stdout
//! nvc inspect file.c [--n 1024]                  # per-loop analysis report
//! nvc serve --model model.ckpt                   # JSON-lines daemon on stdin/stdout
//! nvc hub --model prod=model.ckpt --listen 127.0.0.1:7199
//! ```
//!
//! `serve` keeps one model warm on stdin/stdout; `hub` is the networked
//! tier — N named checkpoints behind one TCP endpoint, weighted A/B
//! routing, hot-swap `reload`, and a decision cache that persists across
//! restarts versioned by checkpoint hash (see `nvc-hub`).
//!
//! Every subcommand rejects unknown flags with its usage text instead of
//! silently ignoring them (`neurovectorizer::cli`).

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use neurovectorizer::cli::{parse_args, Flag, ParsedArgs};
use neurovectorizer::{Compiler, Hub, ModelSpec, NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::{generator, Kernel};
use nvc_ir::ParamEnv;
use nvc_vectorizer::ActionSpace;

const USAGE: &str = "usage:
  nvc train [--kernels N] [--iterations N] [--seed N] [--matmul-threads N]
            [--kernel-mode strict|fast] [--trace FILE] [--journal FILE] --out FILE
  nvc vectorize FILE.c [--model FILE]
  nvc inspect FILE.c [--n VALUE]
  nvc serve [--model FILE] [--workers N] [--batch N] [--flush-us N] [--cache N] [--shards N]
            [--matmul-threads N] [--kernel-mode strict|fast] [--trace FILE]
  nvc hub --model NAME=FILE [--model NAME=FILE…] [--weight NAME=N…] [--listen ADDR]
          [--cache-file PATH] [--cache-checkpoint-secs N] [--transport event|threads]
          [--request-threads N] [--announce REGISTRY_ADDR] [--node NAME]
          [--advertise ADDR] [--announce-ttl-ms N] [--peers ADDR[,ADDR…]]
          [--workers N] [--batch N] [--flush-us N] [--cache N] [--shards N]
          [--matmul-threads N] [--kernel-mode strict|fast] [--trace FILE]
          [--learn] [--learn-journal FILE] [--learn-promotion-log FILE]
          [--learn-model NAME] [--learn-challenger NAME] [--learn-checkpoint FILE]
          [--learn-interval-ms N] [--learn-min-reports N] [--learn-canary-weight N]
          [--learn-z Z] [--learn-min-cohort N] [--learn-iters N]
  nvc registry [--listen ADDR]
  nvc resolve --registry ADDR [--model NAME]

--matmul-threads shards the nvc-nn matmul kernels' output rows across N
persistent pool workers (default: NVC_MATMUL_THREADS or 1); results are
bitwise-identical at any value. NVC_MATMUL_POOL=0 falls back to scoped
per-call threads.
--kernel-mode picks the kernel numeric contract (default: NVC_KERNEL_MODE,
else `fast` for serve/hub and `strict` everywhere else): `strict` is
bitwise-reproducible; `fast` runs FMA + k-split + online-softmax kernels
that are ε-close with identical decisions.
--transport picks the hub's connection driver: `event` (default) is a
single selector thread driving every connection nonblocking with
--request-threads protocol workers; `threads` is one thread per
connection, kept for parity testing.
--trace FILE exports per-request spans as JSON lines (equivalent to
NVC_TRACE=FILE); --journal FILE appends one JSON line of training
telemetry per iteration. Tracing never changes decisions or weights.

--learn enables online learning from serve traffic: clients post measured
rewards back through the `report` verb (correlated by the `key` stamped on
each vectorize loop report); the hub journals them (--learn-journal,
append mode — the corpus survives restarts), periodically fine-tunes a
challenger from the champion's weights (--learn-iters PPO iterations once
--learn-min-reports accumulate), canaries it at --learn-canary-weight
through the registry A/B split, and promotes it over --learn-model via the
atomic reload once its reward cohort clears a Welch z of --learn-z with
--learn-min-cohort observations per side — or parks it at weight 0 on a
loss. A regressing promotion is rolled back automatically. Lifecycle
events append to --learn-promotion-log.

Fleet: `nvc registry` runs the discovery registry; `nvc hub --announce
REGISTRY` heartbeats (model, checkpoint hash, address) there so `nvc
resolve` and fleet clients find it; `--peers` pulls a warm cache image
from a running peer before taking traffic; --cache-checkpoint-secs
writes the decision cache every N seconds so a crash loses at most one
interval. Hub and registry also shut down cleanly on stdin EOF
(supervisor exit), persisting the cache like the shutdown verb.";

/// Honors a parsed `--trace FILE` flag (the CLI spelling of
/// `NVC_TRACE=FILE`).
fn apply_trace_flag(p: &ParsedArgs) {
    if let Some(path) = p.get("--trace") {
        nvc_obs::set_trace_output(path);
    }
}

fn main() -> ExitCode {
    // NVC_TRACE=FILE enables span tracing for any subcommand; the
    // per-subcommand --trace flag does the same thing explicitly.
    nvc_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("vectorize") => cmd_vectorize(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("hub") => cmd_hub(&args[1..]),
        Some("registry") => cmd_registry(&args[1..]),
        Some("resolve") => cmd_resolve(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Drain any spans still in the ring before the process exits (the
    // flush is incremental, so this is a no-op when tracing is off).
    nvc_obs::flush_trace();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nvc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_train(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    const FLAGS: &[Flag] = &[
        Flag::value("--kernels"),
        Flag::value("--iterations"),
        Flag::value("--seed"),
        Flag::value("--out"),
        Flag::value("--matmul-threads"),
        Flag::value("--kernel-mode"),
        Flag::value("--trace"),
        Flag::value("--journal"),
    ];
    let p = parse_args(args, FLAGS, USAGE)?;
    no_positionals(&p, "train")?;
    apply_trace_flag(&p);
    let kernels: usize = p.parse_value("--kernels")?.unwrap_or(96);
    let iterations: usize = p.parse_value("--iterations")?.unwrap_or(20);
    let seed: u64 = p.parse_value("--seed")?.unwrap_or(17);
    let out = p
        .get("--out")
        .ok_or("train requires --out FILE")?
        .to_string();

    let mut cfg = NvConfig::fast().with_seed(seed);
    if let Some(n) = p.parse_value::<usize>("--matmul-threads")? {
        cfg.matmul_threads = n.max(1);
    }
    if let Some(mode) = p.parse_value("--kernel-mode")? {
        cfg.kernel_mode = mode;
    }
    let pool = generator::generate(seed, kernels);
    eprintln!(
        "training on {} kernels, {iterations} iterations…",
        pool.len()
    );
    let mut env = VectorizeEnv::new(pool, cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg);
    if let Some(path) = p.get("--journal") {
        nv.set_train_journal(Some(nvc_obs::Journal::create(path)?));
        eprintln!("journaling per-iteration telemetry to {path}");
    }
    let stats = nv.train(&mut env, iterations);
    for s in stats.iter().step_by(iterations.div_ceil(10).max(1)) {
        eprintln!(
            "  steps {:>7}  reward_mean {:+.3}  loss {:+.3}",
            s.steps, s.reward_mean, s.loss
        );
    }
    std::fs::write(&out, nv.checkpoint())?;
    eprintln!("wrote checkpoint to {out}");
    Ok(())
}

fn read_source(path: &str) -> Result<String, Box<dyn std::error::Error>> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        Ok(std::fs::read_to_string(path)?)
    }
}

fn one_positional(p: &ParsedArgs, what: &str) -> Result<String, String> {
    match p.positionals() {
        [one] => Ok(one.clone()),
        [] => Err(format!("{what} requires a source file (or `-` for stdin)")),
        many => Err(format!("{what} takes one source file, got {}", many.len())),
    }
}

/// Subcommands without positionals reject strays loudly — `nvc serve
/// model.ckpt` (forgotten `--model`) must not silently start an
/// untrained daemon.
fn no_positionals(p: &ParsedArgs, what: &str) -> Result<(), String> {
    match p.positionals() {
        [] => Ok(()),
        strays => Err(format!(
            "{what} takes no positional arguments, got {strays:?}\n{USAGE}"
        )),
    }
}

fn cmd_vectorize(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    const FLAGS: &[Flag] = &[Flag::value("--model")];
    let p = parse_args(args, FLAGS, USAGE)?;
    let file = one_positional(&p, "vectorize")?;
    let source = read_source(&file)?;
    let mut nv = NeuroVectorizer::new(NvConfig::fast());
    if let Some(model) = p.get("--model") {
        let ckpt = std::fs::read_to_string(model)?;
        nv.restore(&ckpt)?;
    }
    let annotated = nv.vectorize_source(&source)?;
    println!("{annotated}");
    Ok(())
}

/// Applies the serving knobs shared by `serve` and `hub`.
fn apply_serve_flags(cfg: &mut NvConfig, p: &ParsedArgs) -> Result<(), String> {
    if let Some(n) = p.parse_value::<usize>("--workers")? {
        cfg.serve.workers = n.max(1);
    }
    if let Some(n) = p.parse_value::<usize>("--batch")? {
        cfg.serve.batch_size = n.max(1);
    }
    if let Some(n) = p.parse_value("--flush-us")? {
        cfg.serve.flush_deadline_us = n;
    }
    if let Some(n) = p.parse_value("--cache")? {
        cfg.serve.cache_capacity = n;
    }
    if let Some(n) = p.parse_value::<usize>("--shards")? {
        cfg.serve.cache_shards = n.max(1);
    }
    if let Some(n) = p.parse_value::<usize>("--matmul-threads")? {
        cfg.matmul_threads = n.max(1);
    }
    if let Some(mode) = p.parse_value("--kernel-mode")? {
        cfg.kernel_mode = mode;
    }
    Ok(())
}

/// The serving binaries default to the fast kernels — their job is
/// decision throughput, and fast mode is decision-identical. An explicit
/// `NVC_KERNEL_MODE` still wins (it seeded `cfg.kernel_mode` already),
/// as does a later `--kernel-mode` flag.
fn default_serving_to_fast(cfg: &mut NvConfig) {
    if std::env::var_os("NVC_KERNEL_MODE").is_none() {
        cfg.kernel_mode = nvc_nn::KernelMode::Fast;
    }
}

const SERVE_KNOBS: [Flag; 7] = [
    Flag::value("--workers"),
    Flag::value("--batch"),
    Flag::value("--flush-us"),
    Flag::value("--cache"),
    Flag::value("--shards"),
    Flag::value("--matmul-threads"),
    Flag::value("--kernel-mode"),
];

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut flags = vec![Flag::value("--model"), Flag::value("--trace")];
    flags.extend(SERVE_KNOBS);
    let p = parse_args(args, &flags, USAGE)?;
    no_positionals(&p, "serve")?;
    apply_trace_flag(&p);
    let mut cfg = NvConfig::fast();
    default_serving_to_fast(&mut cfg);
    apply_serve_flags(&mut cfg, &p)?;
    let mut nv = NeuroVectorizer::new(cfg);
    if let Some(model) = p.get("--model") {
        let ckpt = std::fs::read_to_string(model)?;
        nv.restore(&ckpt)?;
        eprintln!("nvc serve: restored weights from {model}");
    } else {
        eprintln!("nvc serve: WARNING — serving an untrained model (pass --model FILE)");
    }
    let serve_cfg = nv.config().serve.clone();
    eprintln!(
        "nvc serve: ready ({} workers, batch {}, flush {}µs, cache {} entries / {} shards, {} matmul thread(s), {} kernels); one JSON request per line",
        serve_cfg.workers,
        serve_cfg.batch_size,
        serve_cfg.flush_deadline_us,
        serve_cfg.cache_capacity,
        serve_cfg.cache_shards,
        nv.config().matmul_threads.max(1),
        nv.config().kernel_mode
    );
    let handle = nv.serve();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    neurovectorizer::run_daemon(&handle, stdin.lock(), &mut stdout)?;
    eprintln!("nvc serve: drained; final stats emitted");
    Ok(())
}

/// Watches stdin for EOF — the supervisor-exit signal — and initiates a
/// clean hub/registry shutdown (drain + cache persist) when it arrives.
/// The thread is detached: it either triggers shutdown or blocks on a
/// TTY until the process exits some other way.
fn watch_stdin_eof(on_eof: impl FnOnce() + Send + 'static) {
    let _ = std::thread::Builder::new()
        .name("nvc-stdin-eof".to_string())
        .spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {} // discard; the hub speaks TCP, not stdin
                }
            }
            on_eof();
        });
}

fn cmd_hub(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut flags = vec![
        Flag::repeated("--model"),
        Flag::repeated("--weight"),
        Flag::value("--listen"),
        Flag::value("--cache-file"),
        Flag::value("--cache-checkpoint-secs"),
        Flag::value("--trace"),
        Flag::value("--transport"),
        Flag::value("--request-threads"),
        Flag::value("--announce"),
        Flag::value("--node"),
        Flag::value("--advertise"),
        Flag::value("--announce-ttl-ms"),
        Flag::value("--peers"),
        Flag::switch("--learn"),
        Flag::value("--learn-journal"),
        Flag::value("--learn-promotion-log"),
        Flag::value("--learn-model"),
        Flag::value("--learn-challenger"),
        Flag::value("--learn-checkpoint"),
        Flag::value("--learn-interval-ms"),
        Flag::value("--learn-min-reports"),
        Flag::value("--learn-canary-weight"),
        Flag::value("--learn-z"),
        Flag::value("--learn-min-cohort"),
        Flag::value("--learn-iters"),
    ];
    flags.extend(SERVE_KNOBS);
    let p = parse_args(args, &flags, USAGE)?;
    no_positionals(&p, "hub")?;
    apply_trace_flag(&p);

    let mut cfg = NvConfig::fast();
    default_serving_to_fast(&mut cfg);
    apply_serve_flags(&mut cfg, &p)?;
    if let Some(listen) = p.get("--listen") {
        cfg.hub.listen = listen.to_string();
    }
    if let Some(path) = p.get("--cache-file") {
        cfg.hub.cache_path = Some(path.to_string());
    }
    if let Some(n) = p.parse_value::<u64>("--cache-checkpoint-secs")? {
        cfg.hub.cache_checkpoint_secs = n;
    }
    if let Some(t) = p.get("--transport") {
        cfg.hub.transport = neurovectorizer::HubTransport::parse(t)?;
    }
    if let Some(n) = p.get("--request-threads") {
        cfg.hub.request_threads = n
            .parse::<usize>()
            .map_err(|_| format!("invalid --request-threads `{n}`"))?
            .max(1);
    }

    let models = p.get_all("--model");
    if models.is_empty() {
        return Err("hub requires at least one --model NAME=CHECKPOINT".into());
    }
    let mut weights: Vec<(String, u32)> = Vec::new();
    for w in p.get_all("--weight") {
        let (name, value) = w
            .split_once('=')
            .ok_or_else(|| format!("--weight wants NAME=N, got `{w}`"))?;
        let value: u32 = value
            .parse()
            .map_err(|_| format!("invalid weight `{value}` for model `{name}`"))?;
        weights.push((name.to_string(), value));
    }

    let loader = NeuroVectorizer::hub_loader(cfg.clone());
    // Every hub runs the content-addressed shared store: it deduplicates
    // decisions across A/B sides and reloads locally, and is what peer
    // gossip transfers land in.
    let mut hub = Hub::new(cfg.hub.clone(), cfg.serve.clone())
        .with_loader(loader)
        .with_shared_store(Arc::new(neurovectorizer::ContentStore::default()));
    if p.has("--learn") {
        // The champion defaults to the first --model spec; its
        // checkpoint file is the fine-tune warm start.
        let first_name = models[0]
            .split_once('=')
            .map(|(n, _)| n.to_string())
            .ok_or_else(|| format!("--model wants NAME=CHECKPOINT, got `{}`", models[0]))?;
        let champion = p
            .get("--learn-model")
            .map(str::to_string)
            .unwrap_or(first_name);
        let champion_checkpoint = models
            .iter()
            .find_map(|spec| {
                spec.split_once('=')
                    .filter(|(n, _)| *n == champion)
                    .map(|(_, path)| path.to_string())
            })
            .ok_or_else(|| format!("--learn-model `{champion}` has no --model NAME=CHECKPOINT"))?;
        let lcfg = neurovectorizer::LearnConfig {
            journal_path: p
                .get("--learn-journal")
                .unwrap_or("nvc-learn.jsonl")
                .to_string(),
            promotion_log_path: p.get("--learn-promotion-log").map(str::to_string),
            champion: champion.clone(),
            challenger: p
                .get("--learn-challenger")
                .unwrap_or("challenger")
                .to_string(),
            champion_checkpoint,
            challenger_checkpoint: p
                .get("--learn-checkpoint")
                .unwrap_or("nvc-challenger.ckpt")
                .to_string(),
            min_reports: p.parse_value::<usize>("--learn-min-reports")?.unwrap_or(50),
            canary_weight: p.parse_value::<u32>("--learn-canary-weight")?.unwrap_or(1),
            z_threshold: p.parse_value::<f64>("--learn-z")?.unwrap_or(2.0),
            min_cohort: p.parse_value::<u64>("--learn-min-cohort")?.unwrap_or(20),
            interval_ms: p.parse_value::<u64>("--learn-interval-ms")?.unwrap_or(1000),
        };
        let iters = p.parse_value::<usize>("--learn-iters")?.unwrap_or(20);
        eprintln!(
            "nvc hub: online learning on (champion `{champion}`, journal {}, z {}, canary weight {})",
            lcfg.journal_path, lcfg.z_threshold, lcfg.canary_weight
        );
        hub = hub.with_learning(
            lcfg,
            NeuroVectorizer::challenger_trainer(cfg.clone(), iters),
        )?;
    }
    let hub = hub;
    for spec in models {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--model wants NAME=CHECKPOINT, got `{spec}`"))?;
        let ckpt = std::fs::read_to_string(path)?;
        let mut nv = NeuroVectorizer::new(cfg.clone());
        nv.restore(&ckpt)?;
        let hash = nv.checkpoint_hash();
        let weight = weights
            .iter()
            .find(|(n, _)| n == name)
            .map_or(1, |(_, w)| *w);
        hub.register(ModelSpec {
            name: name.to_string(),
            weight,
            checkpoint_hash: hash,
            model: Arc::new(nv),
        })?;
        eprintln!(
            "nvc hub: registered `{name}` (weight {weight}, checkpoint {hash:016x}) from {path}"
        );
    }
    // A weight naming no registered model is a typo, not a no-op:
    // `--weight prd=9` silently leaving `prod` at weight 1 is exactly
    // the misconfiguration class the strict parser exists to catch.
    for (name, _) in &weights {
        if hub.registry().get(name).is_none() {
            return Err(format!("--weight names unknown model `{name}`").into());
        }
    }
    hub.restore_cache()?;

    // Warm-join gossip: pull a peer's cache image before taking traffic.
    if let Some(peers) = p.get("--peers") {
        let peers: Vec<String> = peers
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        match hub.warm_from_peers(&peers) {
            Ok(n) => eprintln!("nvc hub: warm-joined with {n} cache entries from peers"),
            Err(e) => eprintln!("nvc hub: warm-join failed (starting cold): {e}"),
        }
    }

    let handle = nvc_hub::server::serve_tcp(Arc::new(hub))?;
    eprintln!(
        "nvc hub: listening on {} ({} models, {} kernels{}); send {{\"op\":\"shutdown\"}} to stop",
        handle.addr(),
        handle.hub().registry().len(),
        cfg.kernel_mode,
        match handle.hub().config().cache_path.as_deref() {
            Some(p) => format!(", cache persisted to {p}"),
            None => String::new(),
        }
    );

    // The background learner: journal → fine-tune → A/B → promote.
    let learner = handle
        .hub()
        .learning()
        .is_some()
        .then(|| neurovectorizer::spawn_learner(Arc::clone(handle.hub())));

    // Registry announcements: heartbeat (model, hash, addr) so fleet
    // clients can resolve this node.
    let announcer = p.get("--announce").map(|registry| {
        let node = p
            .get("--node")
            .map(str::to_string)
            .unwrap_or_else(|| format!("hub-{}", std::process::id()));
        let advertise = p
            .get("--advertise")
            .map(str::to_string)
            .unwrap_or_else(|| handle.addr().to_string());
        let mut ann = neurovectorizer::AnnounceConfig::new(registry, &node, &advertise);
        if let Ok(Some(ttl)) = p.parse_value::<u64>("--announce-ttl-ms") {
            ann = ann.with_ttl_ms(ttl);
        }
        eprintln!("nvc hub: announcing as `{node}` ({advertise}) to {registry}");
        neurovectorizer::spawn_announcer(Arc::clone(handle.hub()), ann)
    });

    // Supervisor exit (stdin EOF) shuts down as cleanly as the protocol
    // verb: drain + cache persist, not a snapshot-losing kill.
    {
        let hub = Arc::clone(handle.hub());
        watch_stdin_eof(move || hub.shutdown());
    }

    // Serve until some client sends the shutdown verb (or stdin EOF).
    while !handle.hub().is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    if let Some(a) = announcer {
        a.stop();
    }
    if let Some(l) = learner {
        let _ = l.join();
    }
    handle.shutdown();
    eprintln!("nvc hub: drained and persisted; bye");
    Ok(())
}

fn cmd_registry(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    const FLAGS: &[Flag] = &[Flag::value("--listen"), Flag::value("--trace")];
    let p = parse_args(args, FLAGS, USAGE)?;
    no_positionals(&p, "registry")?;
    apply_trace_flag(&p);
    let listen = p.get("--listen").unwrap_or("127.0.0.1:7209");
    let service = Arc::new(neurovectorizer::RegistryService::default());
    let handle = neurovectorizer::serve_registry(Arc::clone(&service), listen)?;
    eprintln!(
        "nvc registry: listening on {}; hubs announce with --announce, clients resolve with `nvc resolve`",
        handle.addr()
    );
    {
        let service = Arc::clone(&service);
        watch_stdin_eof(move || service.shutdown());
    }
    while !service.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    handle.shutdown();
    eprintln!("nvc registry: bye");
    Ok(())
}

fn cmd_resolve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    const FLAGS: &[Flag] = &[Flag::value("--registry"), Flag::value("--model")];
    let p = parse_args(args, FLAGS, USAGE)?;
    no_positionals(&p, "resolve")?;
    let registry = p
        .get("--registry")
        .ok_or("resolve requires --registry ADDR")?;
    let client = neurovectorizer::RegistryClient::new(registry);
    let nodes = client
        .resolve(p.get("--model"))
        .map_err(|e| format!("resolve against {registry} failed: {e}"))?;
    if nodes.is_empty() {
        println!("no live nodes");
        return Ok(());
    }
    for n in &nodes {
        println!("{} {} (heard {}ms ago)", n.node, n.addr, n.age_ms);
        for m in &n.models {
            println!(
                "  {} checkpoint {:016x} weight {}",
                m.model, m.checkpoint_hash, m.weight
            );
        }
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    const FLAGS: &[Flag] = &[Flag::value("--n")];
    let p = parse_args(args, FLAGS, USAGE)?;
    let file = one_positional(&p, "inspect")?;
    let source = read_source(&file)?;
    let mut env = ParamEnv::new();
    if let Some(n) = p.parse_value("--n")? {
        env = env.with("n", n);
    }
    let kernel = Kernel::new(file.clone(), "cli", source, env);
    let compiler = Compiler::default();
    let loops = compiler.front_end(&kernel)?;
    let space = ActionSpace::for_target(compiler.target());
    println!("{} innermost loop(s)\n", loops.len());
    for l in &loops {
        println!(
            "loop #{} in `{}` (line {}):",
            l.loop_index, l.function, l.header_line
        );
        println!("  trip: {:?}, step {}", l.ir.trip, l.ir.step);
        println!(
            "  accesses: {} ({} loads, {} stores), reductions: {}",
            l.ir.accesses.len(),
            l.ir.loads().count(),
            l.ir.stores().count(),
            l.ir.reductions.len()
        );
        if let Some(b) = &l.ir.blocker {
            println!("  not vectorizable: {b}");
        } else {
            println!("  legal max VF: {}", nvc_ir::legal_max_vf(&l.ir));
        }
        let baseline = compiler.vectorizer().baseline_decision(&l.ir);
        let base = compiler.vectorizer().compile(&l.ir, baseline);
        println!(
            "  baseline: {} → {:.0} cycles/execution",
            baseline, base.timing.cycles
        );
        // Best by exhaustive search.
        let mut best = (baseline, base.timing.cycles);
        for d in space.iter() {
            let c = compiler.vectorizer().compile(&l.ir, d);
            if c.timing.cycles < best.1 {
                best = (c.decision, c.timing.cycles);
            }
        }
        println!(
            "  best:     {} → {:.0} cycles/execution ({:.2}x)",
            best.0,
            best.1,
            base.timing.cycles / best.1
        );
        println!();
    }
    Ok(())
}
