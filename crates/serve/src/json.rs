//! A minimal JSON reader/writer for the serving protocol.
//!
//! The offline dependency set has no `serde_json`, and the protocol only
//! needs flat objects with strings, numbers, booleans and small arrays —
//! this module implements exactly RFC 8259 value syntax (with `\uXXXX`
//! escapes and surrogate pairs) and nothing more.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub position: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Convenience constructor for objects.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let line = r#"{"op":"vectorize","id":"r-1","source":"for (int i = 0; i < n; i++) {\n  a[i] = b[i];\n}","detail":true,"n":42}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("vectorize"));
        assert_eq!(v.get("id").unwrap().as_str(), Some("r-1"));
        assert!(v.get("source").unwrap().as_str().unwrap().contains('\n'));
        assert_eq!(v.get("detail").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        // render → parse is the identity.
        let reparsed = Json::parse(&v.render()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""tab\t quote\" slash\\ é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" slash\\ é 😀"));
        let rendered = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(rendered, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("a\"b\\c\nd\u{1}")
        );
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn arrays_and_nesting() {
        let v = Json::parse(r#"{"loops":[{"vf":8,"if":2},{"vf":1,"if":1}]}"#).unwrap();
        let loops = v.get("loops").unwrap().as_array().unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].get("vf").unwrap().as_f64(), Some(8.0));
    }
}
