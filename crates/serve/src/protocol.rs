//! The JSON-lines wire protocol: request parsing and response shapes.
//!
//! Requests are one JSON object per line:
//!
//! * `{"op":"vectorize","id":"r1","source":"..."}` — annotate every
//!   innermost loop of `source` with a policy-chosen pragma. `op` may be
//!   omitted when `source` is present; `id` is optional and echoed back.
//! * `{"op":"stats"}` — a metrics/cache snapshot.
//! * `{"op":"shutdown"}` — acknowledge and stop the daemon loop.

use crate::json::Json;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Vectorize one source file.
    Vectorize {
        /// Client correlation id, echoed back verbatim.
        id: Option<String>,
        /// C source to annotate.
        source: String,
    },
    /// Metrics snapshot.
    Stats {
        /// Client correlation id.
        id: Option<String>,
    },
    /// Stop the daemon after acknowledging.
    Shutdown {
        /// Client correlation id.
        id: Option<String>,
    },
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        Request::from_json(&v)
    }

    /// Interprets an already-parsed JSON value as a request.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = v.get("id").and_then(Json::as_str).map(str::to_string);
        let op = v.get("op").and_then(Json::as_str);
        match op {
            Some("stats") => Ok(Request::Stats { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some("vectorize") | None => {
                let source = v
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "missing `source` field".to_string())?;
                Ok(Request::Vectorize {
                    id,
                    source: source.to_string(),
                })
            }
            Some(other) => Err(format!("unknown op `{other}`")),
        }
    }

    /// The request's correlation id, if any.
    pub fn id(&self) -> Option<&str> {
        match self {
            Request::Vectorize { id, .. } | Request::Stats { id } | Request::Shutdown { id } => {
                id.as_deref()
            }
        }
    }
}

/// Per-loop decision detail included in a vectorize response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopReport {
    /// Enclosing function name.
    pub function: String,
    /// 1-based header line the pragma was inserted above.
    pub line: u32,
    /// Chosen vectorization factor.
    pub vf: u32,
    /// Chosen interleave factor.
    pub if_: u32,
    /// True when the decision came from the cache.
    pub cached: bool,
    /// The loop's sample hash — the correlation key a client echoes back
    /// in a `report` request to attribute a measured reward to this
    /// decision. Rendered as 16 lowercase hex digits (JSON numbers lose
    /// u64 precision).
    pub key: u64,
}

impl LoopReport {
    /// The JSON object for the `loops` array.
    pub fn to_json(&self) -> Json {
        crate::json::obj(vec![
            ("function", Json::from(self.function.as_str())),
            ("line", Json::from(u64::from(self.line))),
            ("vf", Json::from(self.vf)),
            ("if", Json::from(self.if_)),
            ("cached", Json::from(self.cached)),
            ("key", Json::from(format!("{:016x}", self.key))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops() {
        let r = Request::parse(r#"{"op":"vectorize","id":"a","source":"int x;"}"#).unwrap();
        assert_eq!(
            r,
            Request::Vectorize {
                id: Some("a".into()),
                source: "int x;".into()
            }
        );
        // op defaults to vectorize when source is present.
        let r = Request::parse(r#"{"source":"int x;"}"#).unwrap();
        assert!(matches!(r, Request::Vectorize { id: None, .. }));
        assert!(matches!(
            Request::parse(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"shutdown","id":"z"}"#).unwrap(),
            Request::Shutdown { id: Some(_) }
        ));
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"vectorize"}"#).is_err());
        assert!(Request::parse(r#"{"op":"explode"}"#).is_err());
    }

    #[test]
    fn loop_report_renders_expected_fields() {
        let j = LoopReport {
            function: "f".into(),
            line: 3,
            vf: 8,
            if_: 2,
            cached: true,
            key: 0xDEAD_BEEF,
        }
        .to_json();
        assert_eq!(j.get("function").unwrap().as_str(), Some("f"));
        assert_eq!(j.get("line").unwrap().as_f64(), Some(3.0));
        assert_eq!(j.get("vf").unwrap().as_f64(), Some(8.0));
        assert_eq!(j.get("if").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("key").unwrap().as_str(), Some("00000000deadbeef"));
    }
}
