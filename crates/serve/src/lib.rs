//! `nvc-serve` — the long-lived vectorization service.
//!
//! The paper's end product is an inference artifact: "once the RL agent is
//! trained, it can be plugged in as is for inference without further
//! retraining" (§3.5). A build farm does not call a CLI once per file — it
//! keeps a daemon warm and streams requests at it. This crate is that
//! daemon:
//!
//! * [`cache`] — a **sharded LRU decision cache** keyed by a hash of the
//!   loop's normalized path-context sample ([`sample_key`]). Alpha-renamed
//!   copies of a loop produce the *same* sample (the §3.2 normalization),
//!   so repeated loop shapes across a codebase skip embedding + policy
//!   entirely;
//! * [`batch`] — a **batching layer**: concurrent cache misses coalesce
//!   into one embedding/policy forward pass over a worker pool (bounded
//!   queue, configurable batch size and flush deadline);
//! * [`metrics`] — requests served, cache hit rate, p50/p99 latency
//!   histograms, per-shard occupancy — exported as JSON;
//! * [`protocol`] + [`service`] — a JSON-lines request/response protocol
//!   (stdin/stdout daemon mode via [`run_daemon`]) plus the in-process
//!   [`ServeHandle`] API;
//! * [`json`] — the minimal JSON reader/writer the protocol uses (the
//!   offline dependency set has no `serde_json`).
//!
//! # Protocol
//!
//! One JSON object per line on stdin, one per line on stdout:
//!
//! ```text
//! → {"op":"vectorize","id":"r1","source":"void f(int n){for(int i=0;i<n;i++){...}}"}
//! ← {"id":"r1","ok":true,"source":"...#pragma clang loop...","loops":[
//!      {"function":"f","line":1,"vf":8,"if":2,"cached":false}],"latency_us":412}
//! → {"op":"stats"}
//! ← {"ok":true,"stats":{"requests":1,...,"cache":{"hits":0,...}}}
//! → {"op":"shutdown"}
//! ← {"ok":true,"shutdown":true}
//! ```
//!
//! # In-process usage
//!
//! The model side is abstracted as [`DecisionModel`] (implemented by
//! `neurovectorizer::NeuroVectorizer`); the service only needs batched
//! greedy decisions:
//!
//! ```
//! use std::sync::Arc;
//! use nvc_embed::{EmbedConfig, PathSample};
//! use nvc_machine::TargetConfig;
//! use nvc_serve::{DecisionModel, ServeConfig, ServeHandle};
//!
//! struct Fixed(EmbedConfig, TargetConfig);
//! impl DecisionModel for Fixed {
//!     fn embed_config(&self) -> &EmbedConfig { &self.0 }
//!     fn target(&self) -> &TargetConfig { &self.1 }
//!     fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
//!         samples.iter().map(|_| (2, 1)).collect()
//!     }
//! }
//!
//! let model = Arc::new(Fixed(EmbedConfig::fast(), TargetConfig::i7_8559u()));
//! let handle = ServeHandle::start(model, ServeConfig::default());
//! let out = handle
//!     .vectorize("float a[64]; float b[64];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i]; } }")
//!     .unwrap();
//! assert!(out.source.contains("#pragma clang loop"));
//! ```

pub mod batch;
pub mod cache;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod service;

use serde::{Deserialize, Serialize};

use nvc_embed::{EmbedConfig, PathSample};
use nvc_machine::TargetConfig;

pub use cache::{CacheStats, ShardedLruCache};
pub use json::Json;
pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot};
pub use protocol::{LoopReport, Request};
pub use service::{run_daemon, ServeError, ServeHandle, VectorizeOutput};

/// The model half of the service: batched greedy `(vf_idx, if_idx)`
/// decisions over path-context samples. `neurovectorizer::NeuroVectorizer`
/// implements this; tests use cheap stubs.
pub trait DecisionModel: Send + Sync {
    /// The embedding configuration requests must be hashed/embedded with.
    fn embed_config(&self) -> &EmbedConfig;

    /// The target whose action space decisions index into.
    fn target(&self) -> &TargetConfig;

    /// Greedy action pairs for a batch of samples, one per input, in
    /// order. Must be deterministic: the cache stores these results.
    fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)>;
}

/// A decision store shared *across* [`ServeHandle`]s — across A/B sides
/// of a hub, across hot-swap reloads, and (through `nvc-fleet`'s
/// content store + gossip transfer) across peer nodes.
///
/// The per-handle sharded LRU stays the first-level cache; a handle
/// built with [`ServeHandle::start_with_store`] probes this store on an
/// LRU miss and publishes every leader-computed decision into it. Keys
/// are content addresses `(checkpoint_hash, sample_key)`: a decision is
/// a pure function of both, so an entry is valid wherever that exact
/// checkpoint serves, and a store shared by models with *different*
/// checkpoints can never leak a decision between them.
pub trait SharedDecisionStore: Send + Sync {
    /// Looks up the decision for `sample_key` under `checkpoint_hash`.
    fn get(&self, checkpoint_hash: u64, sample_key: u64) -> Option<(usize, usize)>;

    /// Publishes a computed decision. Implementations must be
    /// last-write-wins idempotent: decisions are deterministic per
    /// `(checkpoint_hash, sample_key)`, so concurrent publishes agree.
    fn put(&self, checkpoint_hash: u64, sample_key: u64, decision: (usize, usize));
}

/// Tuning knobs for the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Total decision-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Number of independent cache shards (clamped to ≥ 1).
    pub cache_shards: usize,
    /// Maximum loops coalesced into one model forward pass (≥ 1).
    pub batch_size: usize,
    /// Maximum pending (not yet batched) loops; when full, request
    /// threads block — backpressure instead of unbounded memory growth.
    pub queue_capacity: usize,
    /// How long a worker waits for a batch to fill before flushing a
    /// partial one, in microseconds.
    pub flush_deadline_us: u64,
    /// Worker threads running model forward passes (≥ 1).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_capacity: 65_536,
            cache_shards: 16,
            batch_size: 32,
            queue_capacity: 4096,
            flush_deadline_us: 200,
            workers: 2,
        }
    }
}

impl ServeConfig {
    /// Builder-style cache capacity override (0 disables caching).
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }

    /// Builder-style batch-size override.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }
}

/// Stable cache key of a normalized path-context sample.
///
/// FNV-1a over the sample's table indices with length separators; two
/// loops that normalize to the same paths (e.g. alpha-renamed copies, the
/// paper's §3.2 dataset trick) collide *intentionally* — that is the
/// cache's whole point.
pub fn sample_key(sample: &PathSample) -> u64 {
    let mut h = nvc_embed::Fnv1a::new();
    h.write(&(sample.starts.len() as u64).to_le_bytes());
    for part in [&sample.starts, &sample.paths, &sample.ends] {
        for &idx in part.iter() {
            h.write(&(idx as u64).to_le_bytes());
        }
        h.write(&0xFFFF_FFFF_FFFF_FFFEu64.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_key_is_stable_and_content_sensitive() {
        let a = PathSample {
            starts: vec![1, 2],
            paths: vec![3, 4],
            ends: vec![5, 6],
        };
        assert_eq!(sample_key(&a), sample_key(&a.clone()));
        let mut b = a.clone();
        b.ends[1] = 7;
        assert_ne!(sample_key(&a), sample_key(&b));
        // Moving an index across section boundaries must change the key.
        let c = PathSample {
            starts: vec![1, 2, 3],
            paths: vec![4],
            ends: vec![5, 6],
        };
        let d = PathSample {
            starts: vec![1, 2],
            paths: vec![3, 4],
            ends: vec![5, 6],
        };
        assert_ne!(sample_key(&c), sample_key(&d));
    }

    #[test]
    fn config_builders_clamp() {
        let c = ServeConfig::default().with_batch_size(0).with_workers(0);
        assert_eq!(c.batch_size, 1);
        assert_eq!(c.workers, 1);
    }
}
