//! The batching layer: cache misses from all requests funnel into one
//! bounded queue; worker threads drain it in batches and run a single
//! model forward pass per batch.
//!
//! A worker flushes when either `batch_size` jobs are waiting or
//! `flush_deadline` has elapsed since it saw the first job — the classic
//! latency/throughput coalescing knob. The queue is bounded: when it is
//! full, `submit` blocks until a worker drains (backpressure), and after
//! shutdown it fails fast by returning an already-disconnected receiver.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use nvc_embed::PathSample;

use crate::metrics::Metrics;
use crate::DecisionModel;

/// One pending decision: the sample to embed and where to send the result.
struct Job {
    sample: PathSample,
    reply: Sender<(usize, usize)>,
    /// Trace id of the request that submitted this job (0 = untraced).
    /// The worker thread records the job's queue-wait and forward spans
    /// under this id, so a request's spans stay together across the
    /// thread hop.
    trace: u64,
    /// When the job entered the queue (queue-wait span start).
    submitted: Instant,
}

/// The shared miss queue.
pub struct Batcher {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    space: Condvar,
    shutdown: AtomicBool,
    batch_size: usize,
    capacity: usize,
    flush_deadline: Duration,
}

impl Batcher {
    /// Builds a queue that coalesces up to `batch_size` jobs, waiting at
    /// most `flush_deadline` to fill a partial batch and holding at most
    /// `capacity` pending jobs before `submit` blocks.
    pub fn new(batch_size: usize, capacity: usize, flush_deadline: Duration) -> Self {
        Batcher {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            space: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_size: batch_size.max(1),
            capacity: capacity.max(1),
            flush_deadline,
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a sample; the returned receiver yields its decision.
    ///
    /// Blocks while the queue is at capacity (backpressure). After
    /// [`Batcher::stop`] the receiver comes back already disconnected, so
    /// callers fail fast instead of waiting out their timeout.
    pub fn submit(&self, sample: PathSample) -> Receiver<(usize, usize)> {
        let (reply, rx) = channel();
        if self.is_shut_down() {
            return rx;
        }
        let mut q = self.lock();
        while q.len() >= self.capacity {
            if self.is_shut_down() {
                return rx;
            }
            let (guard, _) = self
                .space
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        // Re-check under the lock: a worker only exits after observing
        // shutdown with an *empty* queue while holding this lock, so if
        // the flag is still clear here, whoever exits later must first
        // see (and drain) the job we are about to push.
        if self.is_shut_down() {
            return rx;
        }
        q.push_back(Job {
            sample,
            reply,
            trace: nvc_obs::current_trace(),
            submitted: Instant::now(),
        });
        drop(q);
        self.available.notify_one();
        rx
    }

    /// True once [`Batcher::stop`] was called.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Wakes every worker and makes them exit after draining the queue.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.available.notify_all();
        self.space.notify_all();
    }

    /// Worker body: drain batches and run the model until shutdown.
    /// Spawn one thread per configured worker with this.
    pub fn worker_loop(&self, model: &dyn DecisionModel, metrics: &Metrics) {
        loop {
            let mut q = self.lock();
            // Wait for work (or shutdown, once the queue is empty).
            while q.is_empty() {
                if self.is_shut_down() {
                    return;
                }
                let (guard, _) = self
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            // Give the batch a chance to fill before flushing.
            if self.batch_size > 1 && !self.is_shut_down() {
                let deadline = Instant::now() + self.flush_deadline;
                while q.len() < self.batch_size {
                    let now = Instant::now();
                    if now >= deadline || self.is_shut_down() {
                        break;
                    }
                    let (guard, _) = self
                        .available
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                }
            }
            let take = q.len().min(self.batch_size);
            let jobs: Vec<Job> = q.drain(..take).collect();
            let more = !q.is_empty();
            drop(q);
            self.space.notify_all();
            if more {
                // Let a sibling worker start on the remainder immediately.
                self.available.notify_one();
            }
            if jobs.is_empty() {
                // An empty flush (shutdown race, spurious wakeup) must
                // never reach the model: the segmented encoder refuses
                // empty batches (`EmbedError::EmptyBatch`) rather than
                // crashing, and the daemon worker's contract is the same
                // — skip, don't panic.
                continue;
            }
            let samples: Vec<&PathSample> = jobs.iter().map(|j| &j.sample).collect();
            let drained_at = Instant::now();
            let decisions = model.decide_batch(&samples);
            debug_assert_eq!(decisions.len(), jobs.len());
            metrics.record_batch(jobs.len());
            if nvc_obs::tracing_enabled() {
                // Per-job spans under each *submitter's* trace id: how
                // long the job sat queued, and the forward pass it rode.
                let forward_dur = drained_at.elapsed();
                for job in &jobs {
                    nvc_obs::record_span(
                        "queue_wait",
                        job.trace,
                        job.submitted,
                        drained_at.saturating_duration_since(job.submitted),
                    );
                    nvc_obs::record_span("batch_forward", job.trace, drained_at, forward_dur);
                }
            }
            // If a model ever answers short (it reports empty on an
            // input it refuses), the unmatched jobs' senders drop here
            // and their clients fail fast instead of hanging.
            for (job, decision) in jobs.into_iter().zip(decisions) {
                // A dropped receiver (abandoned request) is not an error.
                let _ = job.reply.send(decision);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_embed::EmbedConfig;
    use nvc_machine::TargetConfig;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Deterministic stub: decision derived from the sample itself;
    /// counts the batch sizes it sees.
    struct Stub {
        embed: EmbedConfig,
        target: TargetConfig,
        calls: AtomicU64,
        largest_batch: AtomicU64,
    }

    impl Stub {
        fn new() -> Self {
            Stub {
                embed: EmbedConfig::fast(),
                target: TargetConfig::i7_8559u(),
                calls: AtomicU64::new(0),
                largest_batch: AtomicU64::new(0),
            }
        }
    }

    impl DecisionModel for Stub {
        fn embed_config(&self) -> &EmbedConfig {
            &self.embed
        }

        fn target(&self) -> &TargetConfig {
            &self.target
        }

        fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.largest_batch
                .fetch_max(samples.len() as u64, Ordering::Relaxed);
            samples
                .iter()
                .map(|s| (s.starts[0] % 7, s.paths[0] % 5))
                .collect()
        }
    }

    fn sample(tag: usize) -> PathSample {
        PathSample {
            starts: vec![tag, tag + 1],
            paths: vec![tag * 3],
            ends: vec![tag + 2],
        }
    }

    #[test]
    fn batches_coalesce_and_answers_route_back() {
        let model = Arc::new(Stub::new());
        let metrics = Arc::new(Metrics::default());
        let batcher = Arc::new(Batcher::new(16, 1024, Duration::from_millis(10)));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (b, m, mm) = (
                    Arc::clone(&batcher),
                    Arc::clone(&model),
                    Arc::clone(&metrics),
                );
                std::thread::spawn(move || b.worker_loop(&*m, &mm))
            })
            .collect();

        let receivers: Vec<_> = (0..64).map(|i| batcher.submit(sample(i))).collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let d = rx.recv_timeout(Duration::from_secs(5)).expect("decision");
            assert_eq!(d, (i % 7, (i * 3) % 5), "job {i} got the wrong reply");
        }
        batcher.stop();
        for w in workers {
            w.join().unwrap();
        }
        let calls = model.calls.load(Ordering::Relaxed);
        assert!(
            calls < 64,
            "64 jobs ran in {calls} calls — nothing coalesced"
        );
        assert!(model.largest_batch.load(Ordering::Relaxed) > 1);
        assert_eq!(metrics.snapshot().batched_loops, 64);
    }

    #[test]
    fn batch_size_one_never_coalesces() {
        let model = Arc::new(Stub::new());
        let metrics = Arc::new(Metrics::default());
        let batcher = Arc::new(Batcher::new(1, 1024, Duration::from_millis(10)));
        let worker = {
            let (b, m, mm) = (
                Arc::clone(&batcher),
                Arc::clone(&model),
                Arc::clone(&metrics),
            );
            std::thread::spawn(move || b.worker_loop(&*m, &mm))
        };
        for i in 0..20 {
            let rx = batcher.submit(sample(i));
            rx.recv_timeout(Duration::from_secs(5)).expect("decision");
        }
        batcher.stop();
        worker.join().unwrap();
        assert_eq!(model.largest_batch.load(Ordering::Relaxed), 1);
        assert_eq!(model.calls.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn submit_after_stop_fails_fast() {
        let batcher = Batcher::new(4, 1024, Duration::from_millis(5));
        batcher.stop();
        let rx = batcher.submit(sample(0));
        let t0 = std::time::Instant::now();
        assert!(
            rx.recv_timeout(Duration::from_secs(5)).is_err(),
            "no worker exists; the receiver must be disconnected"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "disconnected receiver must fail immediately, not time out"
        );
    }

    #[test]
    fn full_queue_applies_backpressure() {
        // No workers: the queue can only fill. Capacity 4.
        let batcher = Arc::new(Batcher::new(1, 4, Duration::from_millis(5)));
        let _held: Vec<_> = (0..4).map(|i| batcher.submit(sample(i))).collect();
        let blocked = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || {
                let _rx = b.submit(sample(99));
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !blocked.is_finished(),
            "5th submit into a capacity-4 queue must block"
        );
        batcher.stop();
        blocked.join().unwrap();
    }

    #[test]
    fn stop_unblocks_idle_workers() {
        let model = Arc::new(Stub::new());
        let metrics = Arc::new(Metrics::default());
        let batcher = Arc::new(Batcher::new(8, 1024, Duration::from_millis(5)));
        let worker = {
            let (b, m, mm) = (
                Arc::clone(&batcher),
                Arc::clone(&model),
                Arc::clone(&metrics),
            );
            std::thread::spawn(move || b.worker_loop(&*m, &mm))
        };
        std::thread::sleep(Duration::from_millis(20));
        batcher.stop();
        worker.join().unwrap();
    }
}
