//! The service itself: [`ServeHandle`] (in-process API) and
//! [`run_daemon`] (JSON-lines loop over arbitrary reader/writer pairs —
//! stdin/stdout in production, byte buffers in tests).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nvc_embed::{extract_loop_samples, LoopSite, PathSample};
use nvc_frontend::{inject_pragmas, LoopPragma};
use nvc_vectorizer::ActionSpace;

use crate::batch::Batcher;
use crate::cache::{CacheStats, ShardedLruCache};
use crate::json::{obj, Json};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{LoopReport, Request};
use crate::{sample_key, DecisionModel, ServeConfig, SharedDecisionStore};

/// How long a request waits for the batch workers before giving up.
const DECISION_TIMEOUT: Duration = Duration::from_secs(30);

/// How many recently decided samples the handle keeps around for
/// post-reload warmup replay (the cache itself only holds one-way
/// hashes, which cannot be re-decided under a new checkpoint).
const WARM_SAMPLE_CAPACITY: usize = 4096;

/// Service failures surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The source did not parse.
    Frontend(String),
    /// The batch workers did not answer in time (service overloaded).
    Timeout,
    /// The worker pool has been shut down.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Frontend(e) => write!(f, "frontend: {e}"),
            ServeError::Timeout => write!(f, "decision timed out"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

fn recv_decision(
    rx: &std::sync::mpsc::Receiver<(usize, usize)>,
) -> Result<(usize, usize), ServeError> {
    rx.recv_timeout(DECISION_TIMEOUT).map_err(|e| match e {
        std::sync::mpsc::RecvTimeoutError::Timeout => ServeError::Timeout,
        std::sync::mpsc::RecvTimeoutError::Disconnected => ServeError::ShuttingDown,
    })
}

impl std::error::Error for ServeError {}

/// Result of one vectorize request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorizeOutput {
    /// The source with pragmas injected above every decided loop.
    pub source: String,
    /// Per-loop decisions, in source order.
    pub loops: Vec<LoopReport>,
    /// End-to-end service latency for this request.
    pub latency_us: u64,
}

struct Inner {
    model: Arc<dyn DecisionModel>,
    space: ActionSpace,
    cache: ShardedLruCache<(usize, usize)>,
    batcher: Batcher,
    metrics: Metrics,
    /// Single-flight registry: keys whose decision is being computed
    /// right now, with the reply channels of every request waiting on
    /// them. Concurrent misses on the same key coalesce onto one model
    /// forward instead of embedding the same loop twice.
    inflight: Mutex<HashMap<u64, Vec<Sender<(usize, usize)>>>>,
    /// Second-level decision store shared beyond this handle (A/B
    /// sides, reloads, peer nodes), with the checkpoint hash this
    /// handle's decisions are content-addressed under. `None` keeps the
    /// pre-fleet single-cache behavior.
    shared: Option<(u64, Arc<dyn SharedDecisionStore>)>,
    /// Recently decided samples by cache key, kept (bounded) so a
    /// hot-swap reload can replay them as shadow traffic against the
    /// fresh checkpoint — the cache keys alone are one-way hashes.
    warm: Mutex<HashMap<u64, PathSample>>,
}

/// One key's resolution state between [`Inner::begin_decision`] and
/// [`Inner::finish_decision`]. Splitting the two phases lets a request
/// with several distinct misses submit them all before blocking, so they
/// still coalesce into one model batch.
enum PendingDecision {
    /// The cache already had it.
    Cached((usize, usize)),
    /// This request owns the model submission for the key.
    Leader(Receiver<(usize, usize)>),
    /// Another request is already computing the key; wait for its reply.
    Follower(Receiver<(usize, usize)>),
}

impl Inner {
    /// Starts resolving `key`: cache probe, then either join the key's
    /// in-flight computation or become its leader and submit to the
    /// batcher.
    fn begin_decision(&self, key: u64, sample: &PathSample) -> PendingDecision {
        let hit = {
            let _span = nvc_obs::span("cache_lookup");
            self.cache.get(key)
        };
        if let Some(pair) = hit {
            nvc_obs::marker("cache_hit");
            return PendingDecision::Cached(pair);
        }
        // Off the hit path (one global lock would contend the warm
        // loop): every *miss* records its sample for warmup replay.
        self.retain_warm_sample(key, sample);
        // Second level: the shared content-addressed store. A hit there
        // (computed by the A/B twin, a previous incarnation of this
        // checkpoint, or a peer node) back-fills the LRU so the next
        // probe stays local.
        if let Some((ckpt, store)) = &self.shared {
            if let Some(pair) = store.get(*ckpt, key) {
                self.cache.insert(key, pair);
                self.metrics.shared_hits.inc();
                nvc_obs::marker("shared_hit");
                return PendingDecision::Cached(pair);
            }
        }
        {
            let mut inflight = self.inflight.lock();
            if let Some(waiters) = inflight.get_mut(&key) {
                let (tx, rx) = channel();
                waiters.push(tx);
                self.metrics.dedup_waits.inc();
                nvc_obs::marker("dedup_wait");
                return PendingDecision::Follower(rx);
            }
            inflight.insert(key, Vec::new());
        }
        PendingDecision::Leader(self.batcher.submit(sample.clone()))
    }

    /// Blocks until `pending` resolves. Returns the pair and whether it
    /// came from the cache. A leader publishes its result to the cache
    /// and every coalesced follower; if the leader fails, its followers
    /// wake (dropped senders) and retry from the cache probe.
    fn finish_decision(
        &self,
        key: u64,
        sample: &PathSample,
        mut pending: PendingDecision,
    ) -> Result<((usize, usize), bool), ServeError> {
        loop {
            match pending {
                PendingDecision::Cached(pair) => return Ok((pair, true)),
                PendingDecision::Leader(rx) => {
                    return match recv_decision(&rx) {
                        Ok(pair) => {
                            self.cache.insert(key, pair);
                            if let Some((ckpt, store)) = &self.shared {
                                store.put(*ckpt, key, pair);
                                self.metrics.shared_publishes.inc();
                            }
                            let waiters = self.inflight.lock().remove(&key).unwrap_or_default();
                            for w in waiters {
                                // A dropped receiver (abandoned request)
                                // is not an error.
                                let _ = w.send(pair);
                            }
                            Ok((pair, false))
                        }
                        Err(e) => {
                            // Wake the followers by dropping their
                            // senders; they re-resolve from scratch.
                            self.inflight.lock().remove(&key);
                            Err(e)
                        }
                    };
                }
                PendingDecision::Follower(rx) => match rx.recv_timeout(DECISION_TIMEOUT) {
                    Ok(pair) => return Ok((pair, false)),
                    Err(RecvTimeoutError::Timeout) => return Err(ServeError::Timeout),
                    Err(RecvTimeoutError::Disconnected) => {
                        // Our leader failed. Start over — the next
                        // attempt hits the cache, joins a newer leader,
                        // or becomes the leader itself (and surfaces the
                        // underlying error if the service is down).
                        pending = self.begin_decision(key, sample);
                    }
                },
            }
        }
    }

    /// Remembers `sample` under its key for post-reload warmup replay.
    /// Bounded: once full, already-known keys keep refreshing knowledge
    /// of nothing (they are present) and new keys are dropped — the
    /// replay set is best-effort shadow traffic, not a ledger.
    fn retain_warm_sample(&self, key: u64, sample: &PathSample) {
        let mut warm = self.warm.lock();
        if warm.len() < WARM_SAMPLE_CAPACITY || warm.contains_key(&key) {
            warm.entry(key).or_insert_with(|| sample.clone());
        }
    }
}

/// A running vectorization service: worker threads + cache + metrics.
///
/// Dropping the handle stops the workers. All request methods take `&self`
/// and are safe to call from many threads at once.
pub struct ServeHandle {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServeHandle {
    /// Starts the worker pool around `model`.
    ///
    /// Each worker's flush batches run the model's batched forward,
    /// whose matmuls may themselves shard rows across the process-wide
    /// persistent kernel worker pool (`NvConfig::matmul_threads`,
    /// applied when the model is constructed; `NVC_MATMUL_POOL=0`
    /// falls back to per-call scoped threads). The two thread layers
    /// nest freely — concurrent workers' jobs queue on the shared pool
    /// and kernel shards are bitwise-identical at any count — so
    /// worker concurrency never changes a decision, only its latency.
    pub fn start(model: Arc<dyn DecisionModel>, cfg: ServeConfig) -> Self {
        ServeHandle::start_with_store(model, cfg, None)
    }

    /// [`ServeHandle::start`] with a second-level decision store shared
    /// beyond this handle. `shared` carries the checkpoint hash this
    /// handle's decisions are content-addressed under — entries only
    /// flow between handles serving the *same* checkpoint, no matter
    /// how many handles (A/B sides, reload generations, peers via
    /// gossip) share the store object.
    pub fn start_with_store(
        model: Arc<dyn DecisionModel>,
        cfg: ServeConfig,
        shared: Option<(u64, Arc<dyn SharedDecisionStore>)>,
    ) -> Self {
        // `NVC_TRACE=path` turns request tracing on for any embedding of
        // the service — daemon, hub, tests — without CLI plumbing.
        nvc_obs::init_from_env();
        let space = ActionSpace::for_target(model.target());
        let inner = Arc::new(Inner {
            space,
            cache: ShardedLruCache::new(cfg.cache_capacity, cfg.cache_shards),
            batcher: Batcher::new(
                cfg.batch_size,
                cfg.queue_capacity,
                Duration::from_micros(cfg.flush_deadline_us),
            ),
            metrics: Metrics::default(),
            inflight: Mutex::new(HashMap::new()),
            shared,
            warm: Mutex::new(HashMap::new()),
            model,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nv-serve-worker-{i}"))
                    .spawn(move || {
                        inner
                            .batcher
                            .worker_loop(inner.model.as_ref(), &inner.metrics)
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        ServeHandle {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The action space decisions index into.
    pub fn space(&self) -> &ActionSpace {
        &self.inner.space
    }

    /// Decides one already-extracted sample: cache lookup, then
    /// single-flight batched model fallback (a concurrent identical miss
    /// waits for the in-flight decision instead of embedding the loop
    /// again). Returns the action pair and whether it was cached.
    pub fn decide_sample(&self, sample: &PathSample) -> Result<((usize, usize), bool), ServeError> {
        let key = sample_key(sample);
        let pending = self.inner.begin_decision(key, sample);
        self.inner.finish_decision(key, sample, pending)
    }

    /// The full inference product over a source file: decide `(VF, IF)`
    /// for every innermost loop and return the source with pragmas
    /// injected (plus per-loop detail).
    pub fn vectorize(&self, source: &str) -> Result<VectorizeOutput, ServeError> {
        let t0 = Instant::now();
        // Mint a trace id unless the caller (the hub's connection loop)
        // already scoped one over this request.
        let _trace = nvc_obs::request_scope();
        let _request = nvc_obs::span("request");
        self.inner.metrics.requests.inc();
        match self.vectorize_inner(source, t0) {
            Ok(out) => {
                self.inner
                    .metrics
                    .latency
                    .record(t0.elapsed().as_micros() as u64);
                Ok(out)
            }
            Err(e) => {
                self.inner.metrics.errors.inc();
                Err(e)
            }
        }
    }

    fn vectorize_inner(&self, source: &str, t0: Instant) -> Result<VectorizeOutput, ServeError> {
        // The same extraction pipeline as `NeuroVectorizer::vectorize_source`
        // — decisions and cache keys must agree with the direct path.
        let sites = {
            let _span = nvc_obs::span("frontend");
            extract_loop_samples(source, self.inner.model.embed_config())
                .map_err(|e| ServeError::Frontend(e.to_string()))?
        };
        let keyed: Vec<(u64, &LoopSite)> =
            sites.iter().map(|s| (sample_key(&s.sample), s)).collect();
        let mut by_key: Vec<(u64, &PathSample)> = Vec::new();
        for (key, site) in &keyed {
            if !by_key.iter().any(|(k, _)| k == key) {
                by_key.push((*key, &site.sample));
            }
        }

        // Resolve each distinct key: cache first, then one single-flight
        // submission per miss (identical loop shapes in one file embed
        // once; identical misses across concurrent requests coalesce
        // too). All misses are submitted before any blocks, so they
        // still share model batches.
        let mut resolved: Vec<(u64, (usize, usize), bool)> = Vec::new();
        let mut waiting: Vec<(u64, &PathSample, PendingDecision)> = Vec::new();
        for (key, sample) in &by_key {
            match self.inner.begin_decision(*key, sample) {
                PendingDecision::Cached(pair) => resolved.push((*key, pair, true)),
                pending => waiting.push((*key, sample, pending)),
            }
        }
        // Finish every pending key even after a failure: a Leader's
        // cleanup (removing its `inflight` registration) happens inside
        // `finish_decision`, so abandoning the rest on the first error
        // would leave their keys permanently marked in-flight and every
        // future miss on them waiting for a reply that never comes.
        let mut first_err = None;
        for (key, sample, pending) in waiting {
            match self.inner.finish_decision(key, sample, pending) {
                Ok((pair, cached)) => resolved.push((key, pair, cached)),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let decision_of = |key: u64| {
            resolved
                .iter()
                .find(|(k, _, _)| *k == key)
                .map(|&(_, pair, cached)| (pair, cached))
                .expect("every pending key was resolved")
        };

        let mut reports: Vec<LoopReport> = keyed
            .iter()
            .map(|(key, site)| {
                let ((vf_idx, if_idx), cached) = decision_of(*key);
                let d = self.inner.space.decision_from_pair(vf_idx, if_idx);
                LoopReport {
                    function: site.function.clone(),
                    line: site.header_line,
                    vf: d.vf,
                    if_: d.if_,
                    cached,
                    key: *key,
                }
            })
            .collect();
        let pragmas: Vec<(u32, LoopPragma)> = reports
            .iter()
            .map(|r| {
                (
                    r.line,
                    LoopPragma {
                        vectorize_width: r.vf,
                        interleave_count: r.if_,
                    },
                )
            })
            .collect();
        let out = inject_pragmas(source, &pragmas);
        reports.sort_by_key(|r| r.line);
        self.inner.metrics.loops_served.add(reports.len() as u64);
        Ok(VectorizeOutput {
            source: out,
            loops: reports,
            latency_us: t0.elapsed().as_micros() as u64,
        })
    }

    /// Point-in-time service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Point-in-time cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The full introspection surface as one JSON object.
    pub fn stats_json(&self) -> Json {
        let m = self.metrics();
        let c = self.cache_stats();
        obj(vec![
            ("uptime_us", Json::from(m.uptime_us)),
            (
                "kernel_mode",
                Json::from(nvc_nn::kernels::kernel_mode().name()),
            ),
            ("requests", Json::from(m.requests)),
            ("errors", Json::from(m.errors)),
            ("loops_served", Json::from(m.loops_served)),
            ("warmup_replayed", Json::from(m.warmup_replayed)),
            (
                "cache",
                obj(vec![
                    ("hits", Json::from(c.hits)),
                    ("misses", Json::from(c.misses)),
                    ("hit_rate", Json::from(c.hit_rate())),
                    ("evictions", Json::from(c.evictions)),
                    ("insertions", Json::from(c.insertions)),
                    ("entries", Json::from(c.len())),
                    ("shards", Json::from(c.occupancy.len())),
                    ("shard_capacity", Json::from(c.shard_capacity)),
                    ("entries_restored", Json::from(m.entries_restored)),
                    (
                        "entries_invalidated_by_version",
                        Json::from(m.entries_invalidated_by_version),
                    ),
                    ("shared_hits", Json::from(m.shared_hits)),
                    ("shared_publishes", Json::from(m.shared_publishes)),
                    (
                        "occupancy",
                        Json::Arr(c.occupancy.iter().map(|&o| Json::from(o)).collect()),
                    ),
                ]),
            ),
            (
                "batch",
                obj(vec![
                    ("batches", Json::from(m.batches)),
                    ("batched_loops", Json::from(m.batched_loops)),
                    ("dedup_waits", Json::from(m.dedup_waits)),
                    ("mean_batch", Json::from(m.mean_batch)),
                ]),
            ),
            (
                "latency",
                obj(vec![
                    ("count", Json::from(m.latency_count)),
                    ("mean_us", Json::from(m.latency_mean_us)),
                    ("p50_us", Json::from(m.latency_p50_us)),
                    ("p99_us", Json::from(m.latency_p99_us)),
                    (
                        "histogram_us",
                        Json::Arr(
                            self.inner
                                .metrics
                                .latency
                                .nonzero_buckets()
                                .into_iter()
                                .map(|(le, n)| Json::Arr(vec![Json::from(le), Json::from(n)]))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("ops", ops_json()),
        ])
    }

    /// Prometheus text exposition of this service's metrics registry,
    /// followed by the kernel op timers (each op sample labelled with the
    /// active `kernel_mode` so dashboards can split strict vs fast
    /// traffic). `labels` is spliced into every sample (`""` for none).
    pub fn render_prometheus(&self, labels: &str) -> String {
        let mut out = self.inner.metrics.registry().render_prometheus(labels);
        out.push_str(&render_ops_prometheus(labels));
        out
    }

    /// The metrics registry behind this handle's instruments.
    pub fn metrics_registry(&self) -> Arc<nvc_obs::MetricsRegistry> {
        Arc::clone(self.inner.metrics.registry())
    }

    /// Handles one protocol line; returns the response line and whether
    /// the daemon should keep running.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let with_id = |id: Option<&str>, mut members: Vec<(&str, Json)>| {
            if let Some(id) = id {
                members.insert(0, ("id", Json::from(id)));
            }
            obj(members).render()
        };
        // Parse the line once; an invalid request may still carry a
        // correlation id the client needs to pair the error with.
        let parsed = Json::parse(line)
            .map_err(|e| (None, format!("invalid JSON: {e}")))
            .and_then(|v| {
                let id = v.get("id").and_then(Json::as_str).map(str::to_string);
                Request::from_json(&v).map_err(|e| (id, e))
            });
        match parsed {
            Err((id, e)) => (
                with_id(
                    id.as_deref(),
                    vec![("ok", Json::from(false)), ("error", Json::from(e))],
                ),
                true,
            ),
            Ok(Request::Stats { id }) => (
                with_id(
                    id.as_deref(),
                    vec![("ok", Json::from(true)), ("stats", self.stats_json())],
                ),
                true,
            ),
            Ok(Request::Shutdown { id }) => (
                with_id(
                    id.as_deref(),
                    vec![("ok", Json::from(true)), ("shutdown", Json::from(true))],
                ),
                false,
            ),
            Ok(Request::Vectorize { id, source }) => match self.vectorize(&source) {
                Ok(out) => (
                    with_id(
                        id.as_deref(),
                        vec![
                            ("ok", Json::from(true)),
                            ("source", Json::from(out.source)),
                            (
                                "loops",
                                Json::Arr(out.loops.iter().map(LoopReport::to_json).collect()),
                            ),
                            ("latency_us", Json::from(out.latency_us)),
                        ],
                    ),
                    true,
                ),
                Err(e) => (
                    with_id(
                        id.as_deref(),
                        vec![
                            ("ok", Json::from(false)),
                            ("error", Json::from(e.to_string())),
                        ],
                    ),
                    true,
                ),
            },
        }
    }

    /// Stops the worker pool, letting in-flight batches complete (the
    /// workers drain the queue before exiting). Idempotent, takes
    /// `&self` so daemons can drain on a shared handle; also done on
    /// drop.
    pub fn shutdown(&self) {
        self.inner.batcher.stop();
        let workers: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // Push any still-buffered span records to the `NVC_TRACE` sink
        // before the process (or test) moves on.
        nvc_obs::flush_trace();
    }

    /// Every cached decision, coldest first per shard — the persistence
    /// image the hub writes to disk on shutdown
    /// (see [`ShardedLruCache::snapshot`] for the recency guarantee).
    pub fn cache_snapshot(&self) -> Vec<(u64, (usize, usize))> {
        self.inner.cache.snapshot()
    }

    /// Seeds the decision cache from a persisted snapshot (coldest
    /// first) and counts the entries in `entries_restored`. The caller
    /// is responsible for version-checking the snapshot against the
    /// model's checkpoint hash *before* restoring — a stale snapshot
    /// must go through [`ServeHandle::record_invalidated_entries`]
    /// instead of here.
    pub fn restore_cache(&self, entries: impl IntoIterator<Item = (u64, (usize, usize))>) -> usize {
        let n = self.inner.cache.restore(entries);
        self.inner.metrics.entries_restored.add(n as u64);
        n
    }

    /// Records `n` persisted cache entries that were discarded because
    /// their snapshot was taken under a different checkpoint.
    pub fn record_invalidated_entries(&self, n: u64) {
        self.inner.metrics.entries_invalidated_by_version.add(n);
    }

    /// The samples this handle has decided (bounded, miss-path only) —
    /// the shadow-traffic set a hot-swap reload replays against the
    /// replacement handle so it starts warm.
    pub fn warm_samples(&self) -> Vec<PathSample> {
        self.inner.warm.lock().values().cloned().collect()
    }

    /// The embedding vocabulary configuration of the underlying model —
    /// what a caller needs to re-extract samples from source text with
    /// keys that agree with this handle's decisions.
    pub fn embed_config(&self) -> nvc_embed::EmbedConfig {
        self.inner.model.embed_config().clone()
    }

    /// The sample behind a decision `key`, if this handle still holds it
    /// in its warm set. The online-learning loop uses this to correlate a
    /// client's `report` (which echoes the key from a vectorize response)
    /// back to the path-context sample the decision was made on. The warm
    /// set is bounded and miss-path-only, so `None` is an expected answer
    /// for old or cache-hit-only keys — callers fall back to re-extracting
    /// from the reported source.
    pub fn lookup_sample(&self, key: u64) -> Option<PathSample> {
        self.inner.warm.lock().get(&key).cloned()
    }

    /// The cached decision for `key`, if still resident. Pure probe: no
    /// model fallback, no LRU-order perturbation beyond the read itself.
    pub fn lookup_decision(&self, key: u64) -> Option<(usize, usize)> {
        self.inner.cache.get(key)
    }

    /// Replays `samples` as shadow traffic: each one is decided through
    /// the normal cache → shared-store → model path (so already-warm
    /// keys cost a probe, not a forward) and counted in
    /// `warmup_replayed`. Returns how many were decided; stops early if
    /// the handle shuts down mid-replay.
    pub fn warm_replay(&self, samples: &[PathSample]) -> usize {
        let mut replayed = 0;
        for s in samples {
            match self.decide_sample(s) {
                Ok(_) => {
                    self.inner.metrics.warmup_replayed.inc();
                    replayed += 1;
                }
                Err(ServeError::ShuttingDown) => break,
                Err(_) => {}
            }
        }
        replayed
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Prometheus exposition of the kernel op timers. Mirrors
/// [`ops_json`]'s filter (only ops that ran; empty when `NVC_OPS` is
/// off) and splices `labels` in front of the per-sample label set the
/// same way the metrics registry does.
fn render_ops_prometheus(labels: &str) -> String {
    use std::fmt::Write as _;
    let mode = nvc_nn::kernels::kernel_mode().name();
    let snap: Vec<_> = nvc_obs::ops_snapshot()
        .into_iter()
        .filter(|s| s.calls > 0)
        .collect();
    if snap.is_empty() {
        return String::new();
    }
    let set = |op: &str| {
        if labels.is_empty() {
            format!("op=\"{op}\",kernel_mode=\"{mode}\"")
        } else {
            format!("{labels},op=\"{op}\",kernel_mode=\"{mode}\"")
        }
    };
    let mut out = String::from("# TYPE nvc_kernel_op_calls_total counter\n");
    for s in &snap {
        let _ = writeln!(
            out,
            "nvc_kernel_op_calls_total{{{}}} {}",
            set(s.op.name()),
            s.calls
        );
    }
    out.push_str("# TYPE nvc_kernel_op_time_us_total counter\n");
    for s in &snap {
        let _ = writeln!(
            out,
            "nvc_kernel_op_time_us_total{{{}}} {}",
            set(s.op.name()),
            s.total_ns as f64 / 1_000.0
        );
    }
    out
}

/// The kernel op-timer aggregates as one JSON object: op name →
/// `{calls, total_us}`, only ops that ran (empty when `NVC_OPS` is off —
/// the section is always present so consumers need no feature probe).
fn ops_json() -> Json {
    obj(nvc_obs::ops_snapshot()
        .into_iter()
        .filter(|s| s.calls > 0)
        .map(|s| {
            (
                s.op.name(),
                obj(vec![
                    ("calls", Json::from(s.calls)),
                    ("total_us", Json::from(s.total_ns as f64 / 1_000.0)),
                ]),
            )
        })
        .collect())
}

/// The daemon loop: one JSON request per input line, one JSON response
/// per output line, until EOF or a `shutdown` request.
///
/// Both exits drain gracefully: [`ServeHandle::shutdown`] lets in-flight
/// batches complete, then one final line
/// `{"final_stats": …}` (the full [`MetricsSnapshot`]/cache surface) is
/// emitted so operators keep the session's counters even when the client
/// just closed stdin (`Ctrl-D`).
pub fn run_daemon<R: BufRead, W: Write>(
    handle: &ServeHandle,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, keep_going) = handle.handle_line(&line);
        writeln!(output, "{response}")?;
        output.flush()?;
        if !keep_going {
            break;
        }
    }
    handle.shutdown();
    writeln!(
        output,
        "{}",
        obj(vec![("final_stats", handle.stats_json())]).render()
    )?;
    output.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_embed::EmbedConfig;
    use nvc_machine::TargetConfig;

    /// Deterministic model: the decision is a function of the sample.
    struct Stub {
        embed: EmbedConfig,
        target: TargetConfig,
    }

    impl Stub {
        fn new() -> Self {
            Stub {
                embed: EmbedConfig::fast(),
                target: TargetConfig::i7_8559u(),
            }
        }
    }

    impl DecisionModel for Stub {
        fn embed_config(&self) -> &EmbedConfig {
            &self.embed
        }

        fn target(&self) -> &TargetConfig {
            &self.target
        }

        fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
            let dims = (
                self.target.vf_candidates().len(),
                self.target.if_candidates().len(),
            );
            samples
                .iter()
                .map(|s| {
                    (
                        s.len() % dims.0,
                        s.starts.first().copied().unwrap_or(0) % dims.1,
                    )
                })
                .collect()
        }
    }

    fn start(cfg: ServeConfig) -> ServeHandle {
        ServeHandle::start(Arc::new(Stub::new()), cfg)
    }

    const SRC: &str = "float a[512]; float b[512]; float M[32][32];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * 2.0;
    }
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
            M[i][j] = 0.0;
        }
    }
}";

    #[test]
    fn vectorize_annotates_all_innermost_loops() {
        let h = start(ServeConfig::default());
        let out = h.vectorize(SRC).unwrap();
        assert_eq!(out.loops.len(), 2);
        assert_eq!(out.source.matches("#pragma clang loop").count(), 2);
        assert!(out.loops.iter().all(|l| !l.cached), "first request is cold");
        // Same file again: every loop now comes from the cache.
        let again = h.vectorize(SRC).unwrap();
        assert!(again.loops.iter().all(|l| l.cached));
        assert_eq!(again.source, out.source, "cache must not change decisions");
        let stats = h.cache_stats();
        assert!(stats.hits >= 2);
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let h = start(ServeConfig::default());
        let err = h.vectorize("void f( {{{").unwrap_err();
        assert!(matches!(err, ServeError::Frontend(_)));
        assert_eq!(h.metrics().errors, 1);
    }

    #[test]
    fn daemon_speaks_json_lines() {
        let h = start(ServeConfig::default());
        let src_json = Json::from(SRC).render();
        let input = format!(
            "{{\"op\":\"vectorize\",\"id\":\"r1\",\"source\":{src_json}}}\n\
             {{\"op\":\"stats\"}}\n\
             not json\n\
             {{\"op\":\"shutdown\",\"id\":\"bye\"}}\n\
             {{\"op\":\"stats\"}}\n"
        );
        let mut out = Vec::new();
        run_daemon(&h, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(
            lines.len(),
            5,
            "daemon must stop at shutdown, then emit one final_stats line"
        );

        let r1 = Json::parse(lines[0]).unwrap();
        assert_eq!(r1.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(r1.get("ok").unwrap().as_bool(), Some(true));
        assert!(r1
            .get("source")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("#pragma clang loop"));
        assert_eq!(r1.get("loops").unwrap().as_array().unwrap().len(), 2);

        let stats = Json::parse(lines[1]).unwrap();
        assert_eq!(
            stats
                .get("stats")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );

        let bad = Json::parse(lines[2]).unwrap();
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));

        let bye = Json::parse(lines[3]).unwrap();
        assert_eq!(bye.get("shutdown").unwrap().as_bool(), Some(true));
        assert_eq!(bye.get("id").unwrap().as_str(), Some("bye"));

        // Graceful drain: the last line is the session's final counters.
        let fin = Json::parse(lines[4]).unwrap();
        let stats = fin.get("final_stats").expect("final_stats line");
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(1.0));
        assert!(stats.get("uptime_us").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            h.inner.batcher.is_shut_down(),
            "daemon exit must drain the worker pool"
        );
    }

    #[test]
    fn daemon_drains_and_reports_on_eof() {
        // No shutdown request: the client just closes stdin (Ctrl-D).
        let h = start(ServeConfig::default());
        let src_json = Json::from(SRC).render();
        let input = format!("{{\"op\":\"vectorize\",\"source\":{src_json}}}\n");
        let mut out = Vec::new();
        run_daemon(&h, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 2, "response + final_stats");
        let fin = Json::parse(lines[1]).unwrap();
        let stats = fin.get("final_stats").expect("EOF must emit final stats");
        assert_eq!(stats.get("loops_served").unwrap().as_f64(), Some(2.0));
        assert!(
            h.inner.batcher.is_shut_down(),
            "EOF must shut the worker pool down, not just drop it"
        );
    }

    #[test]
    fn identical_loop_shapes_dedupe_within_one_request() {
        // Two alpha-renamed copies of the same loop: one model decision,
        // one cache entry.
        let src = "float a[64]; float b[64]; float c[64]; float d[64];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i];
    }
    for (int k = 0; k < n; k++) {
        c[k] = d[k];
    }
}";
        let h = start(ServeConfig::default());
        let out = h.vectorize(src).unwrap();
        assert_eq!(out.loops.len(), 2);
        assert_eq!(h.cache_stats().insertions, 1, "renamed loops share a key");
        assert_eq!(out.loops[0].vf, out.loops[1].vf);
        assert_eq!(out.loops[0].if_, out.loops[1].if_);
    }

    /// A model slow enough that a second request on the same key arrives
    /// while the first is still in flight; counts the rows it embeds.
    struct SlowStub {
        embed: EmbedConfig,
        target: TargetConfig,
        rows_seen: std::sync::atomic::AtomicU64,
    }

    impl DecisionModel for SlowStub {
        fn embed_config(&self) -> &EmbedConfig {
            &self.embed
        }

        fn target(&self) -> &TargetConfig {
            &self.target
        }

        fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
            self.rows_seen
                .fetch_add(samples.len() as u64, std::sync::atomic::Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(300));
            samples.iter().map(|s| (s.len() % 3, 1)).collect()
        }
    }

    #[test]
    fn concurrent_identical_misses_coalesce_into_one_forward() {
        let model = Arc::new(SlowStub {
            embed: EmbedConfig::fast(),
            target: TargetConfig::i7_8559u(),
            rows_seen: std::sync::atomic::AtomicU64::new(0),
        });
        // Batch size 1 so each submission is its own forward: without
        // single-flight the second request would run a second forward.
        let h = ServeHandle::start(
            Arc::clone(&model) as Arc<dyn DecisionModel>,
            ServeConfig::default().with_batch_size(1).with_workers(2),
        );
        let sample = PathSample {
            starts: vec![1, 2],
            paths: vec![3, 4],
            ends: vec![5, 6],
        };
        let (first, second) = std::thread::scope(|scope| {
            let a = scope.spawn(|| h.decide_sample(&sample).unwrap());
            // Stagger so the leader is in flight (the model sleeps 300ms).
            std::thread::sleep(Duration::from_millis(100));
            let b = scope.spawn(|| h.decide_sample(&sample).unwrap());
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(first.0, second.0, "coalesced requests must agree");
        assert_eq!(
            model.rows_seen.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "the identical concurrent miss must not embed again"
        );
        assert_eq!(h.metrics().dedup_waits, 1);
    }

    #[test]
    fn requests_after_shutdown_fail_fast() {
        let h = start(ServeConfig::default());
        h.shutdown();
        h.shutdown(); // idempotent
        let t0 = std::time::Instant::now();
        let err = h.vectorize(SRC).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "post-shutdown requests must not wait out the decision timeout"
        );
    }

    #[test]
    fn restored_cache_serves_hits_and_counts() {
        let h = start(ServeConfig::default());
        let out = h.vectorize(SRC).unwrap();
        let snap = h.cache_snapshot();
        assert!(!snap.is_empty());

        // A second handle seeded from the snapshot serves the same file
        // entirely from cache — no model forward at all.
        let h2 = start(ServeConfig::default());
        assert_eq!(h2.restore_cache(snap.clone()), snap.len());
        let again = h2.vectorize(SRC).unwrap();
        assert_eq!(again.source, out.source, "restored decisions must agree");
        assert!(again.loops.iter().all(|l| l.cached));
        let m = h2.metrics();
        assert_eq!(m.entries_restored, snap.len() as u64);
        assert_eq!(m.batches, 0, "restored entries must skip the model");

        h2.record_invalidated_entries(9);
        assert_eq!(h2.metrics().entries_invalidated_by_version, 9);
    }

    #[test]
    fn error_responses_echo_the_request_id() {
        let h = start(ServeConfig::default());
        for bad in [
            r#"{"op":"vectorize","id":"r7"}"#,
            r#"{"op":"explode","id":"r7"}"#,
            r#"{"op":"vectorize","id":"r7","source":"void f( {{{"}"#,
        ] {
            let (resp, keep) = h.handle_line(bad);
            assert!(keep);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
            assert_eq!(
                v.get("id").unwrap().as_str(),
                Some("r7"),
                "error response dropped the id: {resp}"
            );
        }
        // Unparsable lines genuinely have no id to echo.
        let (resp, _) = h.handle_line("not json");
        assert!(Json::parse(&resp).unwrap().get("id").is_none());
    }

    #[test]
    fn stats_json_has_the_full_surface() {
        let h = start(ServeConfig::default());
        h.vectorize(SRC).unwrap();
        let s = h.stats_json();
        for path in [
            vec!["requests"],
            vec!["uptime_us"],
            vec!["cache", "hits"],
            vec!["cache", "hit_rate"],
            vec!["cache", "occupancy"],
            vec!["cache", "entries_restored"],
            vec!["cache", "entries_invalidated_by_version"],
            vec!["batch", "mean_batch"],
            vec!["latency", "p99_us"],
            vec!["latency", "histogram_us"],
            vec!["ops"],
        ] {
            let mut v = &s;
            for k in path.iter() {
                v = v
                    .get(k)
                    .unwrap_or_else(|| panic!("missing stats key {path:?}"));
            }
        }
        // The histogram dump carries the latency observation.
        let buckets = s
            .get("latency")
            .unwrap()
            .get("histogram_us")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(!buckets.is_empty(), "one request must fill one bucket");
        let total: f64 = buckets
            .iter()
            .map(|b| b.as_array().unwrap()[1].as_f64().unwrap())
            .sum();
        assert_eq!(total, 1.0);
    }

    /// Plain map-backed shared store for exercising the two-level path.
    #[derive(Default)]
    struct MapStore(Mutex<HashMap<(u64, u64), (usize, usize)>>);

    impl SharedDecisionStore for MapStore {
        fn get(&self, ckpt: u64, key: u64) -> Option<(usize, usize)> {
            self.0.lock().get(&(ckpt, key)).copied()
        }

        fn put(&self, ckpt: u64, key: u64, pair: (usize, usize)) {
            self.0.lock().insert((ckpt, key), pair);
        }
    }

    #[test]
    fn shared_store_spans_handles_of_one_checkpoint_only() {
        let store: Arc<MapStore> = Arc::new(MapStore::default());
        let shared = |ckpt: u64| Some((ckpt, Arc::clone(&store) as Arc<dyn SharedDecisionStore>));
        let h1 =
            ServeHandle::start_with_store(Arc::new(Stub::new()), ServeConfig::default(), shared(7));
        let out = h1.vectorize(SRC).unwrap();
        assert!(h1.metrics().shared_publishes > 0, "leader must publish");

        // A second handle under the same checkpoint hash serves the
        // whole file from the shared store: zero model forwards, and
        // the decisions are bitwise identical.
        let h2 =
            ServeHandle::start_with_store(Arc::new(Stub::new()), ServeConfig::default(), shared(7));
        let again = h2.vectorize(SRC).unwrap();
        assert_eq!(again.source, out.source);
        assert!(again.loops.iter().all(|l| l.cached));
        let m = h2.metrics();
        assert!(m.shared_hits > 0);
        assert_eq!(m.batches, 0, "shared hits must skip the model");

        // A different checkpoint hash must never see those entries.
        let h3 =
            ServeHandle::start_with_store(Arc::new(Stub::new()), ServeConfig::default(), shared(9));
        h3.vectorize(SRC).unwrap();
        let m = h3.metrics();
        assert_eq!(m.shared_hits, 0, "cross-checkpoint leak");
        assert!(m.batches > 0, "other checkpoint must recompute");
    }

    #[test]
    fn warm_replay_decides_counts_and_heats_the_cache() {
        let h = start(ServeConfig::default());
        let out = h.vectorize(SRC).unwrap();
        let samples = h.warm_samples();
        assert_eq!(samples.len(), 2, "both misses must be retained");

        let h2 = start(ServeConfig::default());
        let replayed = h2.warm_replay(&samples);
        assert_eq!(replayed, samples.len());
        assert_eq!(h2.metrics().warmup_replayed, replayed as u64);
        // The replayed keys now serve the original file entirely warm.
        let warm = h2.vectorize(SRC).unwrap();
        assert!(warm.loops.iter().all(|l| l.cached));
        assert_eq!(warm.source, out.source);

        // Replay against a drained handle reports zero, not a hang.
        let h3 = start(ServeConfig::default());
        h3.shutdown();
        assert_eq!(h3.warm_replay(&samples), 0);
    }

    #[test]
    fn prometheus_exposition_covers_the_serve_registry() {
        let h = start(ServeConfig::default());
        h.vectorize(SRC).unwrap();
        let text = h.render_prometheus("");
        assert!(text.contains("serve_requests_total 1"));
        assert!(text.contains("serve_request_latency_us_count 1"));
        let labeled = h.render_prometheus("model=\"m\"");
        assert!(labeled.contains("serve_requests_total{model=\"m\"} 1"));
    }
}
