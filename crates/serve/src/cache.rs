//! The sharded LRU decision cache.
//!
//! Keys are 64-bit hashes of normalized loop samples ([`crate::sample_key`]);
//! values are whatever the caller wants to memoize (the service stores
//! `(vf_idx, if_idx)` action pairs). Shards are independent mutexes, so
//! concurrent requests on different shards never contend; within a shard,
//! a classic intrusive doubly-linked LRU list gives O(1) get/insert/evict.

use std::collections::HashMap;

use parking_lot::Mutex;

const NIL: usize = usize::MAX;

/// Aggregated statistics across all shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries written (first insertions, not value refreshes).
    pub insertions: u64,
    /// Live entries per shard.
    pub occupancy: Vec<usize>,
    /// Capacity per shard.
    pub shard_capacity: usize,
}

impl CacheStats {
    /// Total live entries.
    pub fn len(&self) -> usize {
        self.occupancy.iter().sum()
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups that hit, in `[0, 1]` (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

#[derive(Debug)]
struct LruShard<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl<V: Copy> LruShard<V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: u64) -> Option<V> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.detach(i);
                    self.push_front(i);
                }
                Some(self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.detach(i);
                self.push_front(i);
            }
            return;
        }
        let slot = if self.map.len() >= self.capacity {
            // Reuse the coldest entry's slot.
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slots[victim].key);
            self.evictions += 1;
            victim
        } else {
            self.slots.push(Slot {
                key: 0,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.slots[slot].key = key;
        self.slots[slot].value = value;
        self.push_front(slot);
        self.map.insert(key, slot);
        self.insertions += 1;
    }
}

/// A fixed-capacity LRU cache split over independently locked shards.
#[derive(Debug)]
pub struct ShardedLruCache<V> {
    shards: Vec<Mutex<LruShard<V>>>,
}

impl<V: Copy> ShardedLruCache<V> {
    /// Builds a cache holding about `capacity` entries over `shards`
    /// shards (each shard gets `ceil(capacity / shards)`). A zero
    /// `capacity` disables the cache: every `get` misses, `insert` is a
    /// no-op.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key lives on (Fibonacci spreading of the high bits).
    pub fn shard_of(&self, key: u64) -> usize {
        let spread = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((spread >> 32) as usize) % self.shards.len()
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<V> {
        self.shards[self.shard_of(key)].lock().get(key)
    }

    /// Inserts (or refreshes) `key`, evicting the shard's coldest entry
    /// at capacity.
    pub fn insert(&self, key: u64, value: V) {
        self.shards[self.shard_of(key)].lock().insert(key, value);
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live entry, coldest first within each shard (shards
    /// concatenated in index order). Re-inserting a snapshot in order via
    /// [`ShardedLruCache::restore`] reproduces each shard's recency
    /// ranking, so a persisted-then-restored cache evicts in the same
    /// order the original would have.
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock();
            // Walk tail → head: coldest first.
            let mut i = s.tail;
            while i != NIL {
                out.push((s.slots[i].key, s.slots[i].value));
                i = s.slots[i].prev;
            }
        }
        out
    }

    /// Inserts `entries` in order (oldest/coldest first, the order
    /// [`ShardedLruCache::snapshot`] produces). Returns how many
    /// entries the cache *grew by* — zero when the cache is disabled,
    /// and less than the snapshot size when the snapshot exceeds this
    /// cache's capacity (the restoring daemon may be configured
    /// smaller than the one that wrote it; only survivors count).
    pub fn restore(&self, entries: impl IntoIterator<Item = (u64, V)>) -> usize {
        let before = self.len();
        for (key, value) in entries {
            self.insert(key, value);
        }
        self.len() - before
    }

    /// Aggregated counters and per-shard occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock();
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.insertions += s.insertions;
            out.occupancy.push(s.map.len());
            out.shard_capacity = s.capacity;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_semantics() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(8, 2);
        assert_eq!(c.get(1), None);
        c.insert(1, 10);
        assert_eq!(c.get(1), Some(10));
        c.insert(1, 11);
        assert_eq!(c.get(1), Some(11), "insert refreshes the value");
        let st = c.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.misses, 1);
        assert_eq!(st.insertions, 1, "value refresh is not an insertion");
    }

    #[test]
    fn lru_evicts_coldest_within_shard() {
        // One shard for a deterministic eviction order.
        let c: ShardedLruCache<u32> = ShardedLruCache::new(3, 1);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        // Touch 1 so it is warm; 2 becomes the coldest.
        assert_eq!(c.get(1), Some(1));
        c.insert(4, 4);
        assert_eq!(c.get(2), None, "coldest entry must be evicted");
        assert_eq!(c.get(1), Some(1));
        assert_eq!(c.get(3), Some(3));
        assert_eq!(c.get(4), Some(4));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(0, 4);
        c.insert(9, 9);
        assert_eq!(c.get(9), None);
        assert!(c.is_empty());
    }

    #[test]
    fn keys_spread_across_shards() {
        let c: ShardedLruCache<u64> = ShardedLruCache::new(4096, 8);
        for k in 0..512u64 {
            // Realistic keys: FNV-style hashes, not small integers.
            let key = k.wrapping_mul(0x100_0000_01b3).rotate_left(17) ^ 0xDEAD_BEEF;
            c.insert(key, k);
        }
        let st = c.stats();
        assert_eq!(st.len(), 512);
        for (i, occ) in st.occupancy.iter().enumerate() {
            assert!(
                (16..=112).contains(occ),
                "shard {i} occupancy {occ} far from uniform (512/8 = 64)"
            );
        }
    }

    #[test]
    fn snapshot_restore_preserves_entries_and_recency() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(3, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1: recency order (cold → warm) becomes 2, 3, 1.
        assert_eq!(c.get(1), Some(10));
        let snap = c.snapshot();
        assert_eq!(snap, vec![(2, 20), (3, 30), (1, 10)]);

        let c2: ShardedLruCache<u32> = ShardedLruCache::new(3, 1);
        assert_eq!(c2.restore(snap), 3);
        for (k, v) in [(1, 10), (2, 20), (3, 30)] {
            assert_eq!(c2.get(k), Some(v), "restored entry {k} lost");
        }
        // Recency carried over: after restoring and touching nothing
        // else, inserting a 4th entry evicts 2 (the coldest), same as
        // the original cache would.
        let c3: ShardedLruCache<u32> = ShardedLruCache::new(3, 1);
        c3.restore(c.snapshot());
        c3.insert(4, 40);
        assert_eq!(c3.get(2), None, "coldest snapshot entry must evict first");
        assert_eq!(c3.get(1), Some(10));
    }

    #[test]
    fn restore_into_disabled_cache_is_a_noop() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(0, 2);
        assert_eq!(c.restore(vec![(1, 1), (2, 2)]), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn restore_counts_survivors_not_insertions() {
        // A snapshot larger than the restoring cache: only the entries
        // still resident afterwards count as restored.
        let c: ShardedLruCache<u32> = ShardedLruCache::new(2, 1);
        let restored = c.restore((0..10u64).map(|k| (k, k as u32)));
        assert_eq!(restored, 2, "only survivors count");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn snapshot_covers_all_shards() {
        let c: ShardedLruCache<u64> = ShardedLruCache::new(1024, 8);
        for k in 0..100u64 {
            c.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
        }
        let snap = c.snapshot();
        assert_eq!(snap.len(), 100);
        let c2: ShardedLruCache<u64> = ShardedLruCache::new(1024, 8);
        c2.restore(snap);
        assert_eq!(c2.len(), 100);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let c: ShardedLruCache<u64> = ShardedLruCache::new(64, 4);
        for k in 0..10_000u64 {
            c.insert(k.wrapping_mul(0x9E37_79B9), k);
        }
        let st = c.stats();
        assert!(st.len() <= 64 + 3, "len {} over capacity", st.len());
        for occ in &st.occupancy {
            assert!(*occ <= st.shard_capacity);
        }
        assert!(st.evictions > 0);
    }
}
