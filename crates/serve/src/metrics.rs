//! Service metrics: counters, batch accounting, and a lock-free
//! log₂-bucketed latency histogram with p50/p99 estimates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log₂ microsecond buckets (covers < 1 µs .. > 2⁴⁶ µs).
const BUCKETS: usize = 48;

/// A lock-free latency histogram over log₂(µs) buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        let bucket = (64 - (us | 1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Upper bound (µs) of the bucket containing quantile `q ∈ [0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// All service counters. Cheap to update from any thread.
#[derive(Debug)]
pub struct Metrics {
    /// Vectorize requests accepted.
    pub requests: AtomicU64,
    /// Requests that failed (parse errors, timeouts).
    pub errors: AtomicU64,
    /// Innermost loops decided (cached + computed).
    pub loops_served: AtomicU64,
    /// Model forward passes run by the batch workers.
    pub batches: AtomicU64,
    /// Loops decided inside those forward passes.
    pub batched_loops: AtomicU64,
    /// Misses that coalesced onto another request's in-flight decision
    /// instead of embedding the same loop again (single-flight dedup).
    pub dedup_waits: AtomicU64,
    /// Cache entries restored from a persisted snapshot at startup.
    pub entries_restored: AtomicU64,
    /// Persisted cache entries discarded because their snapshot was
    /// taken under a different checkpoint hash (version mismatch).
    pub entries_invalidated_by_version: AtomicU64,
    /// End-to-end request latency.
    pub latency: LatencyHistogram,
    /// When this service instance started (drives `uptime_us`).
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            loops_served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_loops: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            entries_restored: AtomicU64::new(0),
            entries_invalidated_by_version: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    /// Records one worker batch of `n` loops.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_loops.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_loops = self.batched_loops.load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime_us: self.started.elapsed().as_micros() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            loops_served: self.loops_served.load(Ordering::Relaxed),
            batches,
            batched_loops,
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            entries_restored: self.entries_restored.load(Ordering::Relaxed),
            entries_invalidated_by_version: self
                .entries_invalidated_by_version
                .load(Ordering::Relaxed),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_loops as f64 / batches as f64
            },
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean_us(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// Plain-data snapshot of [`Metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Microseconds since this service instance started.
    pub uptime_us: u64,
    /// Vectorize requests accepted.
    pub requests: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Innermost loops decided.
    pub loops_served: u64,
    /// Model forward passes run.
    pub batches: u64,
    /// Loops decided inside forward passes.
    pub batched_loops: u64,
    /// Misses coalesced onto an in-flight identical decision.
    pub dedup_waits: u64,
    /// Cache entries restored from a persisted snapshot at startup.
    pub entries_restored: u64,
    /// Persisted entries discarded for a checkpoint-version mismatch.
    pub entries_invalidated_by_version: u64,
    /// Average loops per forward pass.
    pub mean_batch: f64,
    /// Latency observations.
    pub latency_count: u64,
    /// Mean request latency (µs).
    pub latency_mean_us: f64,
    /// Median request latency bucket bound (µs).
    pub latency_p50_us: u64,
    /// 99th-percentile latency bucket bound (µs).
    pub latency_p99_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for _ in 0..98 {
            h.record(100); // bucket 2^7 = 128
        }
        for _ in 0..2 {
            h.record(10_000); // bucket 2^14 = 16384
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 128);
        assert!(h.quantile_us(0.99) >= 8192, "p99 must reach the slow tail");
        assert!((h.mean_us() - (98.0 * 100.0 + 2.0 * 10_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn snapshot_carries_uptime_and_persistence_counters() {
        let m = Metrics::default();
        m.entries_restored.fetch_add(17, Ordering::Relaxed);
        m.entries_invalidated_by_version
            .fetch_add(5, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = m.snapshot();
        assert_eq!(s.entries_restored, 17);
        assert_eq!(s.entries_invalidated_by_version, 5);
        assert!(
            s.uptime_us >= 2_000,
            "uptime_us not advancing: {}",
            s.uptime_us
        );
        let s2 = m.snapshot();
        assert!(s2.uptime_us >= s.uptime_us, "uptime must be monotonic");
    }

    #[test]
    fn snapshot_computes_mean_batch() {
        let m = Metrics::default();
        m.record_batch(4);
        m.record_batch(8);
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_loops, 12);
        assert!((s.mean_batch - 6.0).abs() < 1e-12);
    }
}
