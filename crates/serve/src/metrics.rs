//! Service metrics: counters, batch accounting, and latency histograms.
//!
//! The instruments themselves live in [`nvc_obs`] now — this module
//! binds a per-service set of named counters/histograms out of a
//! [`MetricsRegistry`] (so the hub's Prometheus exposition and the
//! serve `stats` verb render the same registry) and keeps the
//! [`MetricsSnapshot`] shape the protocol has always exposed.

use std::sync::Arc;
use std::time::Instant;

use nvc_obs::MetricsRegistry;

pub use nvc_obs::{Counter, HistogramSnapshot, LatencyHistogram};

/// All service counters. Cheap to update from any thread; every
/// instrument is also reachable by name through [`Metrics::registry`].
#[derive(Debug)]
pub struct Metrics {
    /// Vectorize requests accepted (`serve_requests_total`).
    pub requests: Arc<Counter>,
    /// Requests that failed (`serve_errors_total`).
    pub errors: Arc<Counter>,
    /// Innermost loops decided, cached + computed (`serve_loops_total`).
    pub loops_served: Arc<Counter>,
    /// Model forward passes run by the batch workers
    /// (`serve_batches_total`).
    pub batches: Arc<Counter>,
    /// Loops decided inside those forward passes
    /// (`serve_batched_loops_total`).
    pub batched_loops: Arc<Counter>,
    /// Misses that coalesced onto another request's in-flight decision
    /// instead of embedding the same loop again
    /// (`serve_dedup_waits_total`).
    pub dedup_waits: Arc<Counter>,
    /// Cache entries restored from a persisted snapshot at startup
    /// (`serve_cache_entries_restored_total`).
    pub entries_restored: Arc<Counter>,
    /// Persisted cache entries discarded because their snapshot was
    /// taken under a different checkpoint hash
    /// (`serve_cache_entries_invalidated_total`).
    pub entries_invalidated_by_version: Arc<Counter>,
    /// LRU misses answered by the shared content-addressed decision
    /// store instead of a model forward (`serve_shared_hits_total`).
    pub shared_hits: Arc<Counter>,
    /// Leader-computed decisions published into the shared store
    /// (`serve_shared_publishes_total`).
    pub shared_publishes: Arc<Counter>,
    /// Warm samples replayed as shadow traffic against this handle
    /// after a hot-swap reload (`serve_warmup_replayed_total`).
    pub warmup_replayed: Arc<Counter>,
    /// End-to-end request latency (`serve_request_latency_us`).
    pub latency: Arc<LatencyHistogram>,
    /// The registry every instrument above is registered in.
    registry: Arc<MetricsRegistry>,
    /// When this service instance started (drives `uptime_us`).
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::in_registry(Arc::new(MetricsRegistry::default()))
    }
}

impl Metrics {
    /// Binds the service's instruments inside `registry` (the hub hands
    /// each model the same registry namespace pattern).
    pub fn in_registry(registry: Arc<MetricsRegistry>) -> Self {
        Metrics {
            requests: registry.counter("serve_requests_total"),
            errors: registry.counter("serve_errors_total"),
            loops_served: registry.counter("serve_loops_total"),
            batches: registry.counter("serve_batches_total"),
            batched_loops: registry.counter("serve_batched_loops_total"),
            dedup_waits: registry.counter("serve_dedup_waits_total"),
            entries_restored: registry.counter("serve_cache_entries_restored_total"),
            entries_invalidated_by_version: registry
                .counter("serve_cache_entries_invalidated_total"),
            shared_hits: registry.counter("serve_shared_hits_total"),
            shared_publishes: registry.counter("serve_shared_publishes_total"),
            warmup_replayed: registry.counter("serve_warmup_replayed_total"),
            latency: registry.histogram("serve_request_latency_us"),
            registry,
            started: Instant::now(),
        }
    }

    /// The registry behind this service's instruments (Prometheus
    /// exposition, ad-hoc snapshots).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records one worker batch of `n` loops.
    pub fn record_batch(&self, n: usize) {
        self.batches.inc();
        self.batched_loops.add(n as u64);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.get();
        let batched_loops = self.batched_loops.get();
        MetricsSnapshot {
            uptime_us: self.started.elapsed().as_micros() as u64,
            requests: self.requests.get(),
            errors: self.errors.get(),
            loops_served: self.loops_served.get(),
            batches,
            batched_loops,
            dedup_waits: self.dedup_waits.get(),
            entries_restored: self.entries_restored.get(),
            entries_invalidated_by_version: self.entries_invalidated_by_version.get(),
            shared_hits: self.shared_hits.get(),
            shared_publishes: self.shared_publishes.get(),
            warmup_replayed: self.warmup_replayed.get(),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_loops as f64 / batches as f64
            },
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean_us(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// Plain-data snapshot of [`Metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Microseconds since this service instance started.
    pub uptime_us: u64,
    /// Vectorize requests accepted.
    pub requests: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Innermost loops decided.
    pub loops_served: u64,
    /// Model forward passes run.
    pub batches: u64,
    /// Loops decided inside forward passes.
    pub batched_loops: u64,
    /// Misses coalesced onto an in-flight identical decision.
    pub dedup_waits: u64,
    /// Cache entries restored from a persisted snapshot at startup.
    pub entries_restored: u64,
    /// Persisted entries discarded for a checkpoint-version mismatch.
    pub entries_invalidated_by_version: u64,
    /// LRU misses answered by the shared decision store.
    pub shared_hits: u64,
    /// Decisions published into the shared decision store.
    pub shared_publishes: u64,
    /// Warm samples replayed against this handle after a reload.
    pub warmup_replayed: u64,
    /// Average loops per forward pass.
    pub mean_batch: f64,
    /// Latency observations.
    pub latency_count: u64,
    /// Mean request latency (µs).
    pub latency_mean_us: f64,
    /// Interpolated median request latency (µs).
    pub latency_p50_us: u64,
    /// Interpolated 99th-percentile request latency (µs).
    pub latency_p99_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_uptime_and_persistence_counters() {
        let m = Metrics::default();
        m.entries_restored.add(17);
        m.entries_invalidated_by_version.add(5);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = m.snapshot();
        assert_eq!(s.entries_restored, 17);
        assert_eq!(s.entries_invalidated_by_version, 5);
        assert!(
            s.uptime_us >= 2_000,
            "uptime_us not advancing: {}",
            s.uptime_us
        );
        let s2 = m.snapshot();
        assert!(s2.uptime_us >= s.uptime_us, "uptime must be monotonic");
    }

    #[test]
    fn snapshot_computes_mean_batch() {
        let m = Metrics::default();
        m.record_batch(4);
        m.record_batch(8);
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_loops, 12);
        assert!((s.mean_batch - 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // The histogram lives in nvc-obs now; this pins the serve-facing
        // behavior change: p50 of a pile of 100 µs observations is ≈ 96,
        // not the old bucket edge of 128.
        let m = Metrics::default();
        for _ in 0..98 {
            m.latency.record(100);
        }
        for _ in 0..2 {
            m.latency.record(10_000);
        }
        let s = m.snapshot();
        assert!(
            (95..=98).contains(&s.latency_p50_us),
            "{}",
            s.latency_p50_us
        );
        assert!(s.latency_p99_us >= 8_192);
    }

    #[test]
    fn instruments_are_visible_through_the_registry() {
        let m = Metrics::default();
        m.requests.inc();
        m.latency.record(50);
        let snap = m.registry().snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "serve_requests_total" && *v == 1));
        assert!(snap
            .histograms
            .iter()
            .any(|(n, h)| n == "serve_request_latency_us" && h.count == 1));
    }
}
