//! Loop-carried dependence tests bounding the legal vectorization factor.
//!
//! This reimplements the slice of LLVM's `LoopAccessAnalysis` that matters
//! for the paper: pragmas are *hints*, and "sometimes the compiler can
//! decide not to consider these pragmas if it is not feasible … predicates
//! and memory dependency can hinder reaching high VF and IF" (§3). The
//! agent may request any factor; [`legal_max_vf`] is the clamp that keeps
//! the compiled code correct.
//!
//! The tests implemented are ZIV (zero index variable) and strong SIV
//! (single index variable, equal strides), which cover every kernel in the
//! paper's dataset families. Anything outside them is answered
//! conservatively (no vectorization), exactly as a production compiler
//! falls back when its checks fail.

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, MemAccess};
use crate::loop_ir::LoopIr;

/// Why a pair of accesses constrains (or does not constrain) the VF.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairVerdict {
    /// No dependence possible (different arrays, or disjoint residue
    /// classes like `b[2i]` vs `b[2i+1]`).
    Independent,
    /// Anti or same-iteration dependence — safe at any VF.
    SafeAnyVf,
    /// Flow or output dependence with this iteration distance; VF must not
    /// exceed it.
    BoundedBy(u64),
    /// Analysis could not prove anything — vectorization disabled.
    Unknown,
}

/// One analyzed access pair (store vs load/store on the same array).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepPair {
    /// Array name.
    pub array: String,
    /// Index of the store access in [`LoopIr::accesses`].
    pub store_idx: usize,
    /// Index of the other access in [`LoopIr::accesses`].
    pub other_idx: usize,
    /// The verdict for this pair.
    pub verdict: PairVerdict,
}

/// Result of dependence analysis over a whole loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependenceSummary {
    /// Largest legal vectorization factor (always a power of two, ≥ 1).
    pub max_vf: u32,
    /// Per-pair evidence.
    pub pairs: Vec<DepPair>,
}

/// Upper bound used when no dependence constrains vectorization.
pub const UNBOUNDED_VF: u32 = 4096;

/// Computes the largest legal VF for `ir` (a power of two, ≥ 1), with the
/// per-pair evidence that produced it.
pub fn analyze_dependences(ir: &LoopIr) -> DependenceSummary {
    if ir.not_vectorizable {
        return DependenceSummary {
            max_vf: 1,
            pairs: vec![],
        };
    }
    let mut bound = u64::from(UNBOUNDED_VF);
    let mut pairs = Vec::new();
    let accesses = &ir.accesses;
    for (si, s) in accesses.iter().enumerate() {
        if !s.is_store {
            continue;
        }
        for (oi, o) in accesses.iter().enumerate() {
            if oi == si || o.array != s.array {
                continue;
            }
            // Store/store pairs are examined once (si < oi).
            if o.is_store && oi < si {
                continue;
            }
            let verdict = classify_pair(s, o);
            match &verdict {
                PairVerdict::Independent | PairVerdict::SafeAnyVf => {}
                PairVerdict::BoundedBy(d) => bound = bound.min(*d),
                PairVerdict::Unknown => bound = 1,
            }
            pairs.push(DepPair {
                array: s.array.clone(),
                store_idx: si,
                other_idx: oi,
                verdict,
            });
        }
    }
    DependenceSummary {
        max_vf: floor_pow2(bound.max(1)).min(u64::from(UNBOUNDED_VF)) as u32,
        pairs,
    }
}

/// Convenience wrapper returning only the VF bound.
pub fn legal_max_vf(ir: &LoopIr) -> u32 {
    analyze_dependences(ir).max_vf
}

/// Classifies the dependence between a store `s` and another access `o` on
/// the same array.
fn classify_pair(s: &MemAccess, o: &MemAccess) -> PairVerdict {
    use AccessKind::*;
    match (s.kind, o.kind) {
        // Store with a non-affine partner: nothing provable.
        (Gather, _) | (_, Gather) => PairVerdict::Unknown,
        // Invariant store (memory reduction like `a[0] += x`) was already a
        // blocker during lowering; reaching here means an invariant *load*
        // against an iv-dependent store, or two invariants.
        (Invariant, Invariant) => {
            if s.offset == o.offset {
                // Same cell written and read every iteration.
                PairVerdict::Unknown
            } else {
                PairVerdict::Independent
            }
        }
        (Invariant, _) | (_, Invariant) => {
            // A moving access against a fixed cell: they collide at most in
            // one iteration, but proving which one requires runtime checks
            // we (like -O2 without them) do not emit.
            PairVerdict::Unknown
        }
        _ => {
            let ss = s.kind.stride().expect("affine store");
            let os = o.kind.stride().expect("affine other");
            if ss != os {
                // Weak SIV: equal-address solutions exist at isolated
                // iterations; LLVM bails without runtime checks.
                return PairVerdict::Unknown;
            }
            let stride = ss;
            debug_assert_ne!(stride, 0);
            let diff = o.offset - s.offset;
            if diff % stride != 0 {
                // Disjoint residue classes: e.g. b[2i] vs b[2i+1].
                return PairVerdict::Independent;
            }
            // Iteration distance from the store to the other access hitting
            // the same address: j_other = i_store + (s.offset - o.offset)/stride.
            let dist = -diff / stride;
            if o.is_store {
                // Output dependence: order of writes to the same cell flips
                // once VF exceeds the distance.
                match dist.unsigned_abs() {
                    0 => PairVerdict::SafeAnyVf, // same cell, same iteration: program order kept lane-wise
                    d => PairVerdict::BoundedBy(d),
                }
            } else if dist > 0 {
                // Flow: value stored at iteration i is loaded at i + dist.
                PairVerdict::BoundedBy(dist as u64)
            } else {
                // Anti (dist < 0) or same-iteration (dist == 0): vector
                // loads execute before vector stores, preserving semantics.
                PairVerdict::SafeAnyVf
            }
        }
    }
}

fn floor_pow2(x: u64) -> u64 {
    if x == 0 {
        1
    } else {
        1 << (63 - x.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::OuterVariation;
    use crate::loop_ir::TripCount;
    use crate::types::ScalarType;

    fn acc(array: &str, kind: AccessKind, offset: i64, is_store: bool) -> MemAccess {
        MemAccess {
            array: array.into(),
            ty: ScalarType::I32,
            kind,
            offset,
            is_store,
            predicated: false,
            aligned: true,
            outer: OuterVariation::Varies,
            reuse_trips: 1,
            array_bytes: 1 << 20,
        }
    }

    fn ir_with(accesses: Vec<MemAccess>) -> LoopIr {
        LoopIr {
            ind_var: "i".into(),
            trip: TripCount::Constant(1024),
            step: 1,
            body: vec![],
            accesses,
            reductions: vec![],
            predicated: false,
            not_vectorizable: false,
            blocker: None,
            outer: vec![],
        }
    }

    #[test]
    fn independent_arrays_are_unbounded() {
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("b", AccessKind::Unit, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), UNBOUNDED_VF);
    }

    #[test]
    fn flow_dependence_bounds_vf() {
        // a[i+4] = a[i]: store offset 4, load offset 0, distance 4.
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 4, true),
            acc("a", AccessKind::Unit, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 4);
    }

    #[test]
    fn flow_distance_rounds_down_to_pow2() {
        // distance 6 → legal VF 4.
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 6, true),
            acc("a", AccessKind::Unit, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 4);
    }

    #[test]
    fn serial_recurrence_cannot_vectorize() {
        // a[i+1] = a[i]: distance 1.
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 1, true),
            acc("a", AccessKind::Unit, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 1);
    }

    #[test]
    fn anti_dependence_is_safe() {
        // a[i] = a[i+1]: loads happen before stores in vector code.
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Unit, 1, false),
        ]);
        assert_eq!(legal_max_vf(&ir), UNBOUNDED_VF);
    }

    #[test]
    fn same_iteration_rw_is_safe() {
        // a[i] = f(a[i]).
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Unit, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), UNBOUNDED_VF);
    }

    #[test]
    fn disjoint_residues_are_independent() {
        // Example #5 of the paper: b[2i] and b[2i+1] never alias.
        let ir = ir_with(vec![
            acc("b", AccessKind::Strided(2), 0, true),
            acc("b", AccessKind::Strided(2), 1, false),
        ]);
        assert_eq!(legal_max_vf(&ir), UNBOUNDED_VF);
        let summary = analyze_dependences(&ir);
        assert_eq!(summary.pairs[0].verdict, PairVerdict::Independent);
    }

    #[test]
    fn strided_flow_dependence() {
        // a[2i+2] = a[2i]: distance (0-2)/2 = -1 → flow at distance 1.
        let ir = ir_with(vec![
            acc("a", AccessKind::Strided(2), 2, true),
            acc("a", AccessKind::Strided(2), 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 1);
    }

    #[test]
    fn mixed_strides_are_unknown() {
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Strided(2), 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 1);
    }

    #[test]
    fn gather_against_store_is_unknown() {
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Gather, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 1);
    }

    #[test]
    fn gather_load_alone_is_fine() {
        let ir = ir_with(vec![
            acc("a", AccessKind::Gather, 0, false),
            acc("b", AccessKind::Unit, 0, true),
        ]);
        assert_eq!(legal_max_vf(&ir), UNBOUNDED_VF);
    }

    #[test]
    fn invariant_load_vs_store_same_array_is_unknown() {
        // a[i] = a[0] + 1 without runtime checks.
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Invariant, 0, false),
        ]);
        assert_eq!(legal_max_vf(&ir), 1);
    }

    #[test]
    fn output_dependence_bounds_vf() {
        // a[i] and a[i+2] stores: final values flip if VF > 2.
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Unit, 2, true),
        ]);
        assert_eq!(legal_max_vf(&ir), 2);
    }

    #[test]
    fn not_vectorizable_flag_forces_scalar() {
        let mut ir = ir_with(vec![]);
        ir.not_vectorizable = true;
        assert_eq!(legal_max_vf(&ir), 1);
    }

    #[test]
    fn store_store_pair_counted_once() {
        let ir = ir_with(vec![
            acc("a", AccessKind::Unit, 0, true),
            acc("a", AccessKind::Unit, 2, true),
        ]);
        let s = analyze_dependences(&ir);
        assert_eq!(s.pairs.len(), 1);
    }

    #[test]
    fn floor_pow2_behaviour() {
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(2), 2);
        assert_eq!(floor_pow2(3), 2);
        assert_eq!(floor_pow2(64), 64);
        assert_eq!(floor_pow2(100), 64);
        assert_eq!(floor_pow2(0), 1);
    }
}
