//! Memory-access classification.
//!
//! Every load/store in a loop body is summarized as a [`MemAccess`]: its
//! stride in the innermost induction variable, how its base address varies
//! with the enclosing loops, and alignment facts. These summaries drive
//! three consumers:
//!
//! * the dependence tests in [`crate::depend`] (legality),
//! * the baseline cost model's per-instruction pricing (LLVM charges unit,
//!   strided and gather accesses very differently),
//! * the cache/bandwidth model in `nvc-machine` (residency and reuse).

use serde::{Deserialize, Serialize};

use crate::types::ScalarType;

/// How the address of an access moves as the innermost induction variable
/// advances by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Consecutive elements: `a[i + c]`.
    Unit,
    /// Constant non-unit stride in elements: `a[s*i + c]` with `s ∉ {0, 1}`.
    /// Negative strides (reverse loops) are represented here too.
    Strided(i64),
    /// Address is not affine in the induction variable (e.g. `a[b[i]]`).
    Gather,
    /// Address does not depend on the induction variable.
    Invariant,
}

impl AccessKind {
    /// Stride in elements when known (`Unit` = 1, `Invariant` = 0).
    pub fn stride(self) -> Option<i64> {
        match self {
            AccessKind::Unit => Some(1),
            AccessKind::Strided(s) => Some(s),
            AccessKind::Invariant => Some(0),
            AccessKind::Gather => None,
        }
    }

    /// True when consecutive vector lanes touch consecutive memory.
    pub fn is_contiguous(self) -> bool {
        matches!(self, AccessKind::Unit)
    }
}

/// How the base address (the part not depending on the innermost induction
/// variable) changes across iterations of the enclosing loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OuterVariation {
    /// Same address range every time the innermost loop runs — the data has
    /// outer-loop temporal reuse (e.g. `B[k][j]` when `k` is an outer loop
    /// and `j` invariant... i.e. the accessed range is revisited).
    Invariant,
    /// The base moves with at least one outer loop — each innermost
    /// execution streams fresh data (e.g. `A[i][k]` scanning row `i`).
    Varies,
}

/// Summary of one load or store site in the innermost loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Array (or pointer parameter) being accessed.
    pub array: String,
    /// Element type.
    pub ty: ScalarType,
    /// Address pattern in the innermost induction variable.
    pub kind: AccessKind,
    /// Constant element offset added to the induction term (`a[i+1]` → 1).
    pub offset: i64,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// True when the access executes under a condition (if-converted).
    pub predicated: bool,
    /// Whether the base address is known to be aligned to at least the
    /// natural vector width (from `__attribute__((aligned(N)))` on the
    /// array and a zero starting offset).
    pub aligned: bool,
    /// Base-address behaviour across enclosing loops.
    pub outer: OuterVariation,
    /// Product of the trip counts of enclosing loops whose induction
    /// variables appear in the base address (1 when none do). The cache
    /// model multiplies the per-pass footprint by this to obtain the data
    /// volume streamed before any address repeats.
    pub reuse_trips: u64,
    /// Total size of the underlying array in bytes (caps the effective
    /// footprint; 0 when unknown, e.g. a pointer parameter without a
    /// binding).
    pub array_bytes: u64,
}

impl MemAccess {
    /// Unique cache lines touched per innermost-loop execution of `trip`
    /// iterations, assuming 64-byte lines.
    ///
    /// For gathers we conservatively assume every lane touches its own line.
    pub fn lines_touched(&self, trip: u64) -> u64 {
        let elem = u64::from(self.ty.size_bytes());
        match self.kind {
            AccessKind::Unit => (trip * elem).div_ceil(64).max(1),
            AccessKind::Strided(s) => {
                let s = s.unsigned_abs();
                if s == 0 {
                    return 1;
                }
                let span = trip * s * elem;
                let dense = span.div_ceil(64).max(1);
                // When the stride exceeds a line, only every touched line counts.
                dense.min(trip.max(1))
            }
            AccessKind::Gather => trip.max(1),
            AccessKind::Invariant => 1,
        }
    }

    /// Bytes of unique data touched per innermost-loop execution.
    pub fn bytes_touched(&self, trip: u64) -> u64 {
        self.lines_touched(trip) * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(kind: AccessKind, ty: ScalarType) -> MemAccess {
        MemAccess {
            array: "a".into(),
            ty,
            kind,
            offset: 0,
            is_store: false,
            predicated: false,
            aligned: true,
            outer: OuterVariation::Varies,
            reuse_trips: 1,
            array_bytes: 1 << 20,
        }
    }

    #[test]
    fn stride_values() {
        assert_eq!(AccessKind::Unit.stride(), Some(1));
        assert_eq!(AccessKind::Strided(-2).stride(), Some(-2));
        assert_eq!(AccessKind::Invariant.stride(), Some(0));
        assert_eq!(AccessKind::Gather.stride(), None);
    }

    #[test]
    fn unit_access_lines() {
        // 1024 i32s = 4096 bytes = 64 lines.
        assert_eq!(
            acc(AccessKind::Unit, ScalarType::I32).lines_touched(1024),
            64
        );
        // Tiny loops still touch one line.
        assert_eq!(acc(AccessKind::Unit, ScalarType::I8).lines_touched(3), 1);
    }

    #[test]
    fn strided_access_lines_capped_by_trip() {
        // Stride 32 i32s = 128-byte gaps: one line per iteration.
        let a = acc(AccessKind::Strided(32), ScalarType::I32);
        assert_eq!(a.lines_touched(100), 100);
        // Stride 2 i32s: spans 800 bytes over 100 iters → 13 lines.
        let b = acc(AccessKind::Strided(2), ScalarType::I32);
        assert_eq!(b.lines_touched(100), 13);
    }

    #[test]
    fn gather_touches_line_per_lane() {
        assert_eq!(
            acc(AccessKind::Gather, ScalarType::F64).lines_touched(17),
            17
        );
    }

    #[test]
    fn invariant_touches_one_line() {
        assert_eq!(
            acc(AccessKind::Invariant, ScalarType::F64).lines_touched(1000),
            1
        );
    }

    #[test]
    fn negative_stride_counts_like_positive() {
        let a = acc(AccessKind::Strided(-1), ScalarType::I32);
        let b = acc(AccessKind::Strided(1), ScalarType::I32);
        assert_eq!(a.lines_touched(256), b.lines_touched(256));
    }
}
