//! Scalar types of the loop IR.

use std::fmt;

use serde::{Deserialize, Serialize};

use nvc_frontend::Type;

/// Machine-level scalar type of an IR value.
///
/// Signedness is dropped: the performance model and the vectorizer treat
/// signed and unsigned integers identically (as LLVM's cost tables largely
/// do), while element *width* matters a great deal — it determines how many
/// lanes fit a vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScalarType {
    /// 1-bit predicate (comparison results, masks).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl ScalarType {
    /// Width of the type in bytes (predicates count as 1).
    pub fn size_bytes(self) -> u32 {
        match self {
            ScalarType::I1 | ScalarType::I8 => 1,
            ScalarType::I16 => 2,
            ScalarType::I32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::F64 => 8,
        }
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Number of lanes of this type in a vector register of
    /// `register_bits` bits.
    pub fn lanes_in(self, register_bits: u32) -> u32 {
        (register_bits / 8 / self.size_bytes()).max(1)
    }
}

impl From<Type> for ScalarType {
    fn from(t: Type) -> Self {
        match t {
            Type::Void => ScalarType::I32, // void never carries data; placeholder
            Type::Char { .. } => ScalarType::I8,
            Type::Short { .. } => ScalarType::I16,
            Type::Int { .. } => ScalarType::I32,
            Type::Long { .. } => ScalarType::I64,
            Type::Float => ScalarType::F32,
            Type::Double => ScalarType::F64,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I1 => "i1",
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(ScalarType::I8.size_bytes(), 1);
        assert_eq!(ScalarType::I16.size_bytes(), 2);
        assert_eq!(ScalarType::I32.size_bytes(), 4);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
    }

    #[test]
    fn lanes_in_256_bit_register() {
        assert_eq!(ScalarType::I32.lanes_in(256), 8);
        assert_eq!(ScalarType::F64.lanes_in(256), 4);
        assert_eq!(ScalarType::I8.lanes_in(256), 32);
        assert_eq!(ScalarType::I16.lanes_in(512), 32);
    }

    #[test]
    fn from_frontend_types() {
        assert_eq!(
            ScalarType::from(Type::Short { unsigned: true }),
            ScalarType::I16
        );
        assert_eq!(ScalarType::from(Type::Float), ScalarType::F32);
        assert_eq!(
            ScalarType::from(Type::Long { unsigned: false }),
            ScalarType::I64
        );
    }

    #[test]
    fn display_is_llvm_like() {
        assert_eq!(ScalarType::F32.to_string(), "f32");
        assert_eq!(ScalarType::I1.to_string(), "i1");
    }
}
