//! Runtime parameter bindings and whole-program IR containers.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::lower::LoweredLoop;
use crate::types::ScalarType;

/// Runtime values for function parameters and array-size estimates.
///
/// The paper's framework compiles a program and *runs* it; loop bounds that
/// are function parameters (`for (i = 0; i < N; i++)`) are unknown to the
/// compiler but have concrete values at run time. A [`ParamEnv`] carries
/// those concrete values so the performance model can execute the loop,
/// while the IR still records the bound as [`crate::TripCount::Runtime`] so
/// the *compiler-side* decisions (baseline cost model, remainder handling)
/// see exactly what LLVM would see.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParamEnv {
    values: BTreeMap<String, i64>,
    array_sizes: BTreeMap<String, u64>,
    default_trip: u64,
}

impl ParamEnv {
    /// Creates an empty environment with a default trip estimate of 1024.
    pub fn new() -> Self {
        Self {
            values: BTreeMap::new(),
            array_sizes: BTreeMap::new(),
            default_trip: 1024,
        }
    }

    /// Binds scalar parameter `name` to `value` (builder style).
    pub fn with(mut self, name: impl Into<String>, value: i64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Declares the element count of a pointer-parameter array.
    pub fn with_array_len(mut self, name: impl Into<String>, elements: u64) -> Self {
        self.array_sizes.insert(name.into(), elements);
        self
    }

    /// Sets the fallback trip count used for loops whose bounds cannot be
    /// evaluated (e.g. `while` loops).
    pub fn with_default_trip(mut self, trip: u64) -> Self {
        self.default_trip = trip;
        self
    }

    /// Looks up a scalar binding.
    pub fn value(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    /// Looks up an array length binding (in elements).
    pub fn array_len(&self, name: &str) -> Option<u64> {
        self.array_sizes.get(name).copied()
    }

    /// The fallback trip count.
    pub fn default_trip(&self) -> u64 {
        self.default_trip
    }
}

/// Shape and placement information for one array referenced by a kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayInfo {
    /// Array name.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Dimensions (empty when unknown — pointer parameters).
    pub dims: Vec<u64>,
    /// Known alignment in bytes (16 for globals by default, per common
    /// compiler/linker behaviour; larger with `aligned(N)`).
    pub alignment: u32,
    /// Total footprint in bytes.
    pub bytes: u64,
}

/// The lowered form of a whole kernel: every innermost loop plus a measure
/// of non-loop (scalar) work.
///
/// MiBench-style programs (§4.1 of the paper) spend most of their time
/// outside loops; `scalar_work` models that portion so end-to-end program
/// speedups stay modest even when loops vectorize well, reproducing the
/// ~1.1× average of Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramIr {
    /// Program name (for reports).
    pub name: String,
    /// Innermost loops in source order.
    pub loops: Vec<LoweredLoop>,
    /// Abstract non-loop instruction count executed per invocation.
    pub scalar_work: u64,
}

impl ProgramIr {
    /// Creates a program IR with no scalar work.
    pub fn new(name: impl Into<String>, loops: Vec<LoweredLoop>) -> Self {
        Self {
            name: name.into(),
            loops,
            scalar_work: 0,
        }
    }

    /// Sets the scalar (non-loop) work, in abstract instructions.
    pub fn with_scalar_work(mut self, instrs: u64) -> Self {
        self.scalar_work = instrs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builder_and_lookup() {
        let env = ParamEnv::new()
            .with("n", 512)
            .with("m", 8)
            .with_array_len("a", 4096)
            .with_default_trip(99);
        assert_eq!(env.value("n"), Some(512));
        assert_eq!(env.value("missing"), None);
        assert_eq!(env.array_len("a"), Some(4096));
        assert_eq!(env.default_trip(), 99);
    }

    #[test]
    fn default_trip_defaults_to_1024() {
        assert_eq!(ParamEnv::new().default_trip(), 1024);
    }

    #[test]
    fn program_ir_scalar_work() {
        let p = ProgramIr::new("prog", vec![]).with_scalar_work(10_000);
        assert_eq!(p.scalar_work, 10_000);
        assert_eq!(p.name, "prog");
    }
}
