//! The loop IR itself: a flat SSA instruction list per innermost loop.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::access::MemAccess;
use crate::types::ScalarType;

/// Index of an SSA value in a [`LoopIr`] body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Binary operations of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOpIr {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Comparison predicates (produce `i1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Unary operations of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOpIr {
    /// Arithmetic negation.
    Neg,
    /// Logical not (on `i1`).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Kinds of reductions the vectorizer recognizes.
///
/// Matching LLVM, integer reductions are always vectorizable; floating-point
/// sum/product reductions assume fast-math-style reassociation (the paper's
/// kernels are compiled that way — see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReductionKind {
    /// `s += x` (also `s -= x`).
    Sum,
    /// `s *= x`.
    Product,
    /// `m = min(m, x)` in any surface form.
    Min,
    /// `m = max(m, x)` in any surface form.
    Max,
    /// `s &= x`.
    And,
    /// `s |= x`.
    Or,
    /// `s ^= x`.
    Xor,
}

/// A recognized reduction over a scalar accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reduction {
    /// Accumulator variable name.
    pub var: String,
    /// Kind of combination.
    pub kind: ReductionKind,
    /// Element type of the accumulator.
    pub ty: ScalarType,
}

/// One IR instruction. Instructions are in program order; operands always
/// refer to earlier instructions (SSA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Integer or float constant.
    Const {
        /// Value (integers stored exactly up to 2^53).
        val: f64,
        /// Type.
        ty: ScalarType,
    },
    /// Current value of the innermost induction variable.
    IndVar {
        /// Type (always integer).
        ty: ScalarType,
    },
    /// A loop-invariant parameter or outer-scope scalar read.
    Param {
        /// Name in the source.
        name: String,
        /// Type.
        ty: ScalarType,
    },
    /// Memory load; `access` indexes [`LoopIr::accesses`].
    Load {
        /// Access-site summary index.
        access: usize,
        /// Loaded type.
        ty: ScalarType,
    },
    /// Memory store of `value`; `access` indexes [`LoopIr::accesses`].
    Store {
        /// Access-site summary index.
        access: usize,
        /// Stored value.
        value: ValueId,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOpIr,
        /// Operand.
        a: ValueId,
        /// Result type.
        ty: ScalarType,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOpIr,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
        /// Result type.
        ty: ScalarType,
    },
    /// Comparison producing `i1`.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
        /// Operand type (not the `i1` result).
        ty: ScalarType,
    },
    /// `select cond, a, b` (if-conversion and ternaries).
    Select {
        /// Condition (`i1`).
        cond: ValueId,
        /// Value when true.
        a: ValueId,
        /// Value when false.
        b: ValueId,
        /// Result type.
        ty: ScalarType,
    },
    /// Scalar type conversion.
    Cast {
        /// Operand.
        a: ValueId,
        /// Source type.
        from: ScalarType,
        /// Destination type.
        to: ScalarType,
    },
    /// Math-library call (`sqrtf`, `fabsf`, …).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<ValueId>,
        /// Result type.
        ty: ScalarType,
        /// True when a vector version exists (math intrinsics).
        vectorizable: bool,
    },
    /// Accumulator update feeding reduction `red` (indexes
    /// [`LoopIr::reductions`]). Carries the loop-carried dependence.
    ReduceUpdate {
        /// Reduction index.
        red: usize,
        /// New contribution combined into the accumulator.
        value: ValueId,
        /// Accumulator type.
        ty: ScalarType,
    },
}

impl Instr {
    /// Result type of the instruction (`None` for stores).
    pub fn result_ty(&self) -> Option<ScalarType> {
        match self {
            Instr::Const { ty, .. }
            | Instr::IndVar { ty }
            | Instr::Param { ty, .. }
            | Instr::Load { ty, .. }
            | Instr::Un { ty, .. }
            | Instr::Bin { ty, .. }
            | Instr::Select { ty, .. }
            | Instr::Call { ty, .. }
            | Instr::ReduceUpdate { ty, .. } => Some(*ty),
            Instr::Cmp { .. } => Some(ScalarType::I1),
            Instr::Cast { to, .. } => Some(*to),
            Instr::Store { .. } => None,
        }
    }

    /// Operand value ids of the instruction.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Instr::Const { .. }
            | Instr::IndVar { .. }
            | Instr::Param { .. }
            | Instr::Load { .. } => {
                vec![]
            }
            Instr::Store { value, .. } => vec![*value],
            Instr::Un { a, .. } => vec![*a],
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => vec![*a, *b],
            Instr::Select { cond, a, b, .. } => vec![*cond, *a, *b],
            Instr::Cast { a, .. } => vec![*a],
            Instr::Call { args, .. } => args.clone(),
            Instr::ReduceUpdate { value, .. } => vec![*value],
        }
    }
}

/// Trip count of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TripCount {
    /// Known at compile time.
    Constant(u64),
    /// Only known at run time; carries the actual value used when the
    /// program executes (the compiler sees "unknown", the simulator uses the
    /// real count).
    Runtime(u64),
}

impl TripCount {
    /// The concrete iteration count used at execution time.
    pub fn count(self) -> u64 {
        match self {
            TripCount::Constant(n) | TripCount::Runtime(n) => n,
        }
    }

    /// True when the compiler can see the count.
    pub fn is_compile_time_known(self) -> bool {
        matches!(self, TripCount::Constant(_))
    }
}

/// An enclosing loop of the innermost loop, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OuterLoopInfo {
    /// Number of iterations the enclosing loop executes.
    pub trip: u64,
}

/// The IR of one innermost loop, ready for vectorization analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopIr {
    /// Induction variable name.
    pub ind_var: String,
    /// Iteration count.
    pub trip: TripCount,
    /// Induction step (+1 for canonical loops, −1 for reverse, +c for
    /// manually unrolled sources).
    pub step: i64,
    /// SSA body, one entry per [`ValueId`].
    pub body: Vec<Instr>,
    /// Memory access summaries referenced by `Load`/`Store` instructions.
    pub accesses: Vec<MemAccess>,
    /// Recognized reductions.
    pub reductions: Vec<Reduction>,
    /// True when any instruction executes under a condition (if-converted).
    pub predicated: bool,
    /// True when the body contains a call with no vector counterpart, a
    /// scalar loop-carried recurrence, or another vectorization blocker.
    pub not_vectorizable: bool,
    /// Human-readable reason when `not_vectorizable` is set.
    pub blocker: Option<String>,
    /// Enclosing loops, outermost first (empty for a top-level loop).
    pub outer: Vec<OuterLoopInfo>,
}

impl LoopIr {
    /// Total times the innermost loop body runs per kernel invocation
    /// (product of outer trips × own trip).
    pub fn total_iterations(&self) -> u64 {
        self.outer
            .iter()
            .map(|o| o.trip.max(1))
            .product::<u64>()
            .saturating_mul(self.trip.count())
    }

    /// Number of times the innermost loop is entered per kernel invocation.
    pub fn outer_executions(&self) -> u64 {
        self.outer
            .iter()
            .map(|o| o.trip.max(1))
            .product::<u64>()
            .max(1)
    }

    /// Loads in the body.
    pub fn loads(&self) -> impl Iterator<Item = &MemAccess> {
        self.accesses.iter().filter(|a| !a.is_store)
    }

    /// Stores in the body.
    pub fn stores(&self) -> impl Iterator<Item = &MemAccess> {
        self.accesses.iter().filter(|a| a.is_store)
    }

    /// Rough "work per iteration": arithmetic/memory instruction count,
    /// excluding constants and parameter reads. Used by the compile-time
    /// model and a few heuristics.
    pub fn work_instrs(&self) -> usize {
        self.body
            .iter()
            .filter(|i| {
                !matches!(
                    i,
                    Instr::Const { .. } | Instr::Param { .. } | Instr::IndVar { .. }
                )
            })
            .count()
    }

    /// Validates SSA well-formedness: every operand refers to an earlier
    /// instruction, and access/reduction indices are in range.
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (idx, instr) in self.body.iter().enumerate() {
            for op in instr.operands() {
                if op.0 as usize >= idx {
                    return Err(format!(
                        "instruction {idx} uses {op} which is not defined earlier"
                    ));
                }
            }
            match instr {
                Instr::Load { access, .. } | Instr::Store { access, .. } => {
                    if *access >= self.accesses.len() {
                        return Err(format!("instruction {idx} references invalid access"));
                    }
                }
                Instr::ReduceUpdate { red, .. } => {
                    if *red >= self.reductions.len() {
                        return Err(format!("instruction {idx} references invalid reduction"));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessKind, OuterVariation};

    fn unit_access(is_store: bool) -> MemAccess {
        MemAccess {
            array: "a".into(),
            ty: ScalarType::I32,
            kind: AccessKind::Unit,
            offset: 0,
            is_store,
            predicated: false,
            aligned: true,
            outer: OuterVariation::Varies,
            reuse_trips: 1,
            array_bytes: 1 << 20,
        }
    }

    fn simple_loop() -> LoopIr {
        // for i: a[i] = b[i] + 1
        LoopIr {
            ind_var: "i".into(),
            trip: TripCount::Constant(128),
            step: 1,
            body: vec![
                Instr::Load {
                    access: 0,
                    ty: ScalarType::I32,
                },
                Instr::Const {
                    val: 1.0,
                    ty: ScalarType::I32,
                },
                Instr::Bin {
                    op: BinOpIr::Add,
                    a: ValueId(0),
                    b: ValueId(1),
                    ty: ScalarType::I32,
                },
                Instr::Store {
                    access: 1,
                    value: ValueId(2),
                },
            ],
            accesses: vec![unit_access(false), unit_access(true)],
            reductions: vec![],
            predicated: false,
            not_vectorizable: false,
            blocker: None,
            outer: vec![],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(simple_loop().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let mut l = simple_loop();
        l.body[2] = Instr::Bin {
            op: BinOpIr::Add,
            a: ValueId(3),
            b: ValueId(1),
            ty: ScalarType::I32,
        };
        assert!(l.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_access_index() {
        let mut l = simple_loop();
        l.body[0] = Instr::Load {
            access: 9,
            ty: ScalarType::I32,
        };
        assert!(l.validate().is_err());
    }

    #[test]
    fn total_iterations_multiplies_outer() {
        let mut l = simple_loop();
        l.outer = vec![OuterLoopInfo { trip: 10 }, OuterLoopInfo { trip: 5 }];
        assert_eq!(l.total_iterations(), 10 * 5 * 128);
        assert_eq!(l.outer_executions(), 50);
    }

    #[test]
    fn loads_and_stores_split() {
        let l = simple_loop();
        assert_eq!(l.loads().count(), 1);
        assert_eq!(l.stores().count(), 1);
    }

    #[test]
    fn work_instrs_skips_constants() {
        let l = simple_loop();
        // load, add, store — the constant is free.
        assert_eq!(l.work_instrs(), 3);
    }

    #[test]
    fn trip_count_visibility() {
        assert!(TripCount::Constant(8).is_compile_time_known());
        assert!(!TripCount::Runtime(8).is_compile_time_known());
        assert_eq!(TripCount::Runtime(8).count(), 8);
    }

    #[test]
    fn instr_result_types() {
        assert_eq!(
            Instr::Cmp {
                op: CmpOp::Lt,
                a: ValueId(0),
                b: ValueId(1),
                ty: ScalarType::I32
            }
            .result_ty(),
            Some(ScalarType::I1)
        );
        assert_eq!(
            Instr::Store {
                access: 0,
                value: ValueId(0)
            }
            .result_ty(),
            None
        );
        assert_eq!(
            Instr::Cast {
                a: ValueId(0),
                from: ScalarType::I16,
                to: ScalarType::I32
            }
            .result_ty(),
            Some(ScalarType::I32)
        );
    }
}
