//! Lowering innermost AST loops into [`LoopIr`].
//!
//! Reproduces the analyses the Clang/LLVM pipeline performs before its loop
//! vectorizer runs:
//!
//! * canonical induction-variable and trip-count recognition (`i = a; i < b;
//!   i += c` and friends, forward or reverse);
//! * scalar-evolution-lite affine analysis of every array subscript
//!   (including linearized multi-dimensional accesses);
//! * if-conversion: conditionals become masks and selects, stores become
//!   predicated stores;
//! * reduction recognition (`s += x`, `m = x > m ? x : m`,
//!   `m = fmaxf(m, x)`, …);
//! * conservative bail-outs — early exits, unknown calls, scalar
//!   recurrences — which mark the loop not-vectorizable instead of failing,
//!   because real programs (MiBench) contain such loops and still compile.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use nvc_frontend::ast::{
    BinaryOp, Expr, ExprKind, Function, Stmt, StmtKind, TranslationUnit, UnaryOp,
};

use crate::access::{AccessKind, MemAccess, OuterVariation};
use crate::loop_ir::{
    BinOpIr, CmpOp, Instr, LoopIr, OuterLoopInfo, Reduction, ReductionKind, TripCount, UnOpIr,
    ValueId,
};
use crate::program::{ArrayInfo, ParamEnv};
use crate::types::ScalarType;
use crate::IrError;

/// A lowered innermost loop together with its source coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredLoop {
    /// The loop IR.
    pub ir: LoopIr,
    /// Enclosing function name.
    pub function: String,
    /// Source-order index among all innermost loops of the unit.
    pub loop_index: usize,
    /// 1-based line of the loop header (pragma insertion point).
    pub header_line: u32,
    /// Source text of the loop itself.
    pub text: String,
    /// Source text of the outermost enclosing loop (embedding input).
    pub nest_text: String,
    /// Arrays referenced by the loop.
    pub arrays: BTreeMap<String, ArrayInfo>,
}

/// Lowers every innermost loop in `tu`.
///
/// `source` must be the text `tu` was parsed from. Parameter values and
/// array-size estimates come from `env`.
///
/// # Errors
///
/// Returns [`IrError`] only for malformed input (e.g. a bound that cannot be
/// evaluated even with the environment); loops that merely cannot be
/// vectorized are returned with
/// [`LoopIr::not_vectorizable`] set.
pub fn lower_innermost_loops(
    tu: &TranslationUnit,
    source: &str,
    env: &ParamEnv,
) -> Result<Vec<LoweredLoop>, IrError> {
    let mut out = Vec::new();
    for f in tu.functions() {
        let mut scopes = ScopeInfo::from_function(tu, f, env);
        walk_for_innermost(
            &f.body,
            tu,
            f,
            source,
            env,
            &mut Vec::new(),
            &mut scopes,
            &mut out,
        )?;
    }
    for (i, l) in out.iter_mut().enumerate() {
        l.loop_index = i;
    }
    Ok(out)
}

/// Lowers a single loop statement (must be a loop) in the context of `tu`.
///
/// Convenience entry point for tests and single-kernel pipelines.
///
/// # Errors
///
/// Returns [`IrError::UnsupportedLoopForm`] if `stmt` is not a loop.
pub fn lower_loop(
    tu: &TranslationUnit,
    f: &Function,
    stmt: &Stmt,
    source: &str,
    env: &ParamEnv,
) -> Result<LoweredLoop, IrError> {
    let mut scopes = ScopeInfo::from_function(tu, f, env);
    let mut out = Vec::new();
    walk_for_innermost(
        stmt,
        tu,
        f,
        source,
        env,
        &mut Vec::new(),
        &mut scopes,
        &mut out,
    )?;
    out.into_iter()
        .next()
        .ok_or_else(|| IrError::UnsupportedLoopForm("statement contains no innermost loop".into()))
}

// ---------------------------------------------------------------------
// Scope tracking
// ---------------------------------------------------------------------

/// Names and types visible at the innermost loop from enclosing scopes.
#[derive(Debug, Clone)]
struct ScopeInfo {
    /// Scalar variables declared outside the innermost loop body.
    scalar_tys: HashMap<String, ScalarType>,
    /// Arrays (globals and pointer params).
    arrays: BTreeMap<String, ArrayInfo>,
}

impl ScopeInfo {
    fn from_function(tu: &TranslationUnit, f: &Function, env: &ParamEnv) -> Self {
        let mut scalar_tys = HashMap::new();
        let mut arrays = BTreeMap::new();
        for g in tu.globals() {
            if g.dims.is_empty() {
                scalar_tys.insert(g.name.clone(), ScalarType::from(g.ty));
            } else {
                let dims: Vec<u64> = g.dims.iter().map(|d| (*d).max(0) as u64).collect();
                let bytes =
                    dims.iter().product::<u64>() * u64::from(ScalarType::from(g.ty).size_bytes());
                arrays.insert(
                    g.name.clone(),
                    ArrayInfo {
                        name: g.name.clone(),
                        ty: ScalarType::from(g.ty),
                        dims,
                        alignment: g.alignment.unwrap_or(16),
                        bytes,
                    },
                );
            }
        }
        for p in &f.params {
            if p.is_pointer {
                let ty = ScalarType::from(p.ty);
                let elems = env.array_len(&p.name).unwrap_or(env.default_trip());
                arrays.insert(
                    p.name.clone(),
                    ArrayInfo {
                        name: p.name.clone(),
                        ty,
                        dims: vec![],
                        alignment: 0, // unknown
                        bytes: elems * u64::from(ty.size_bytes()),
                    },
                );
            } else {
                scalar_tys.insert(p.name.clone(), ScalarType::from(p.ty));
            }
        }
        Self { scalar_tys, arrays }
    }
}

/// Recursive walk that finds innermost loops, tracking enclosing loop trip
/// counts, induction variables and declarations.
#[allow(clippy::too_many_arguments)]
fn walk_for_innermost(
    stmt: &Stmt,
    tu: &TranslationUnit,
    f: &Function,
    source: &str,
    env: &ParamEnv,
    outer: &mut Vec<(String, u64)>, // (iv name, trip)
    scopes: &mut ScopeInfo,
    out: &mut Vec<LoweredLoop>,
) -> Result<(), IrError> {
    match &stmt.kind {
        StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
            let init = match &stmt.kind {
                StmtKind::For { init, .. } => init.as_deref(),
                _ => None,
            };
            let mut contains_loop = false;
            body.walk(&mut |s| {
                if s.is_loop() {
                    contains_loop = true;
                }
            });
            if body.is_loop() {
                contains_loop = true;
            }
            if contains_loop {
                // Not innermost: record this loop and any header decls, then
                // descend.
                let (iv, trip) = header_iv_and_trip(stmt, env);
                if let Some(Stmt {
                    kind: StmtKind::Decl { ty, declarators },
                    ..
                }) = init
                {
                    for d in declarators {
                        scopes
                            .scalar_tys
                            .insert(d.name.clone(), ScalarType::from(*ty));
                    }
                }
                outer.push((iv, trip));
                walk_for_innermost(body, tu, f, source, env, outer, scopes, out)?;
                outer.pop();
            } else {
                let nest_span = out_nest_span(stmt, outer);
                let lowered = lower_innermost(stmt, f, source, env, outer, scopes)?;
                let _ = nest_span;
                out.push(lowered);
            }
            Ok(())
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                // Track declarations between loops so later loops see them.
                if let StmtKind::Decl { ty, declarators } = &s.kind {
                    for d in declarators {
                        if d.dims.is_empty() {
                            scopes
                                .scalar_tys
                                .insert(d.name.clone(), ScalarType::from(*ty));
                        }
                    }
                }
                walk_for_innermost(s, tu, f, source, env, outer, scopes, out)?;
            }
            Ok(())
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_for_innermost(then_branch, tu, f, source, env, outer, scopes, out)?;
            if let Some(e) = else_branch {
                walk_for_innermost(e, tu, f, source, env, outer, scopes, out)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn out_nest_span(_stmt: &Stmt, _outer: &[(String, u64)]) -> () {}

/// Extracts (induction variable, trip count) from a loop header for *outer*
/// loop bookkeeping; unknown forms get the environment default.
fn header_iv_and_trip(stmt: &Stmt, env: &ParamEnv) -> (String, u64) {
    if let StmtKind::For {
        init, cond, step, ..
    } = &stmt.kind
    {
        if let Some(h) = analyze_header(init.as_deref(), cond.as_ref(), step.as_ref(), env) {
            return (h.iv, h.trip.count());
        }
    }
    ("<unknown>".to_string(), env.default_trip())
}

// ---------------------------------------------------------------------
// Loop header analysis
// ---------------------------------------------------------------------

#[derive(Debug)]
struct HeaderInfo {
    iv: String,
    start: i64,
    step: i64,
    trip: TripCount,
}

/// Evaluates an expression to an integer given the environment.
/// Returns `(value, compile_time_known)`.
fn eval_expr(e: &Expr, env: &ParamEnv) -> Option<(i64, bool)> {
    match &e.kind {
        ExprKind::IntLit(v) => Some((*v, true)),
        ExprKind::FloatLit(v) => Some((*v as i64, true)),
        ExprKind::Ident(name) => env.value(name).map(|v| (v, false)),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            operand,
        } => eval_expr(operand, env).map(|(v, k)| (-v, k)),
        ExprKind::Cast { operand, .. } => eval_expr(operand, env),
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, ka) = eval_expr(lhs, env)?;
            let (b, kb) = eval_expr(rhs, env)?;
            let v = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                BinaryOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a % b
                }
                BinaryOp::Shl => a << (b & 63),
                BinaryOp::Shr => a >> (b & 63),
                _ => return None,
            };
            Some((v, ka && kb))
        }
        _ => None,
    }
}

/// Recognizes the canonical `for` header forms.
fn analyze_header(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
    env: &ParamEnv,
) -> Option<HeaderInfo> {
    // --- induction variable & start ---
    let (iv, start_expr) = match init.map(|s| &s.kind) {
        Some(StmtKind::Decl { declarators, .. }) if declarators.len() == 1 => {
            let d = &declarators[0];
            (d.name.clone(), d.init.as_ref()?)
        }
        Some(StmtKind::Expr(Expr {
            kind:
                ExprKind::Assign {
                    op: None,
                    target,
                    value,
                },
            ..
        })) => match &target.kind {
            ExprKind::Ident(n) => (n.clone(), value.as_ref()),
            _ => return None,
        },
        _ => return None,
    };
    let start_eval = eval_expr(start_expr, env);

    // --- step ---
    let step_val = match step.map(|e| &e.kind) {
        Some(ExprKind::IncDec { target, delta, .. }) => match &target.kind {
            ExprKind::Ident(n) if *n == iv => *delta,
            _ => return None,
        },
        Some(ExprKind::Assign {
            op: Some(BinaryOp::Add),
            target,
            value,
        }) => match &target.kind {
            ExprKind::Ident(n) if *n == iv => eval_expr(value, env)?.0,
            _ => return None,
        },
        Some(ExprKind::Assign {
            op: Some(BinaryOp::Sub),
            target,
            value,
        }) => match &target.kind {
            ExprKind::Ident(n) if *n == iv => -eval_expr(value, env)?.0,
            _ => return None,
        },
        Some(ExprKind::Assign {
            op: None,
            target,
            value,
        }) => {
            // i = i + c / i = i - c
            let ExprKind::Ident(n) = &target.kind else {
                return None;
            };
            if *n != iv {
                return None;
            }
            match &value.kind {
                ExprKind::Binary { op, lhs, rhs } => {
                    let c = match (&lhs.kind, &rhs.kind) {
                        (ExprKind::Ident(l), _) if *l == iv => eval_expr(rhs, env)?.0,
                        (_, ExprKind::Ident(r)) if *r == iv && *op == BinaryOp::Add => {
                            eval_expr(lhs, env)?.0
                        }
                        _ => return None,
                    };
                    match op {
                        BinaryOp::Add => c,
                        BinaryOp::Sub => -c,
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        _ => return None,
    };
    if step_val == 0 {
        return None;
    }

    // --- bound ---
    let ExprKind::Binary { op, lhs, rhs } = &cond?.kind else {
        return None;
    };
    // Normalize so the IV is on the left.
    let (cmp, bound_expr) = match (&lhs.kind, &rhs.kind) {
        (ExprKind::Ident(n), _) if *n == iv => (*op, rhs.as_ref()),
        (_, ExprKind::Ident(n)) if *n == iv => {
            let flipped = match op {
                BinaryOp::Lt => BinaryOp::Gt,
                BinaryOp::Le => BinaryOp::Ge,
                BinaryOp::Gt => BinaryOp::Lt,
                BinaryOp::Ge => BinaryOp::Le,
                other => *other,
            };
            (flipped, lhs.as_ref())
        }
        _ => return None,
    };
    // Tile-loop pattern first: `for (i = base; i < base + C; i++)` where
    // `base` is an enclosing tile induction variable the evaluator cannot
    // see. The compiler still knows the trip count exactly (Polly emits
    // such loops), so it is a compile-time constant.
    if start_eval.is_none() || eval_expr(bound_expr, env).is_none() {
        if let ExprKind::Binary {
            op: BinaryOp::Add,
            lhs,
            rhs,
        } = &bound_expr.kind
        {
            let span = if exprs_equal_pub(lhs, start_expr) {
                eval_expr(rhs, env)
            } else if exprs_equal_pub(rhs, start_expr) {
                eval_expr(lhs, env)
            } else {
                None
            };
            if let Some((c, true)) = span {
                if cmp == BinaryOp::Lt && step_val > 0 && c > 0 {
                    return Some(HeaderInfo {
                        iv,
                        start: 0,
                        step: step_val,
                        trip: TripCount::Constant(((c + step_val - 1) / step_val) as u64),
                    });
                }
            }
        }
    }

    let (start, start_known) = start_eval?;
    let (bound, bound_known) = eval_expr(bound_expr, env)?;

    // Signed div_ceil is unstable on this toolchain; step sign is handled
    // by the match arms so the divisor is always positive here.
    let dc = |a: i64, b: i64| (a + b - 1) / b;
    let iters = match (cmp, step_val > 0) {
        (BinaryOp::Lt, true) => dc((bound - start).max(0), step_val),
        (BinaryOp::Le, true) => dc((bound - start + 1).max(0), step_val),
        (BinaryOp::Gt, false) => dc((start - bound).max(0), -step_val),
        (BinaryOp::Ge, false) => dc((start - bound + 1).max(0), -step_val),
        (BinaryOp::Ne, _) => ((bound - start) / step_val).max(0),
        _ => return None,
    };
    let trip = if start_known && bound_known {
        TripCount::Constant(iters.max(0) as u64)
    } else {
        TripCount::Runtime(iters.max(0) as u64)
    };
    Some(HeaderInfo {
        iv,
        start,
        step: step_val,
        trip,
    })
}

// ---------------------------------------------------------------------
// Body lowering
// ---------------------------------------------------------------------

struct BodyLowering<'a> {
    scopes: &'a ScopeInfo,
    outer: &'a [(String, u64)],
    iv: String,
    start: i64,
    step: i64,
    body: Vec<Instr>,
    accesses: Vec<MemAccess>,
    /// GVN-lite: (array, kind, offset, predicated) → load value.
    load_cse: HashMap<(String, AccessKind, i64, bool), ValueId>,
    reductions: Vec<Reduction>,
    reduction_vars: HashMap<String, usize>,
    symbols: HashMap<String, (ValueId, ScalarType)>,
    local_tys: HashMap<String, ScalarType>,
    written_outer_scalars: HashSet<String>,
    mask: Option<ValueId>,
    predicated_any: bool,
    blockers: Vec<String>,
    used_arrays: BTreeMap<String, ArrayInfo>,
}

impl<'a> BodyLowering<'a> {
    fn emit(&mut self, i: Instr) -> ValueId {
        self.body.push(i);
        ValueId((self.body.len() - 1) as u32)
    }

    fn block(&mut self, why: impl Into<String>) {
        self.blockers.push(why.into());
    }

    fn scalar_ty(&self, name: &str) -> Option<ScalarType> {
        self.local_tys
            .get(name)
            .copied()
            .or_else(|| self.scopes.scalar_tys.get(name).copied())
    }

    /// Inserts a cast if `v` is not already of type `to`.
    fn coerce(&mut self, v: ValueId, from: ScalarType, to: ScalarType) -> ValueId {
        if from == to {
            v
        } else {
            self.emit(Instr::Cast { a: v, from, to })
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> (ValueId, ScalarType) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let ty = if *v > i64::from(i32::MAX) || *v < i64::from(i32::MIN) {
                    ScalarType::I64
                } else {
                    ScalarType::I32
                };
                (self.emit(Instr::Const { val: *v as f64, ty }), ty)
            }
            ExprKind::FloatLit(v) => {
                // Unsuffixed float literals are treated as f32 in the
                // subset — the paper's float kernels all compute in
                // single precision (see DESIGN.md).
                let ty = ScalarType::F32;
                (self.emit(Instr::Const { val: *v, ty }), ty)
            }
            ExprKind::Ident(name) => self.lower_ident(name),
            ExprKind::Index { .. } => self.lower_load(e),
            ExprKind::Call { callee, args } => self.lower_call(callee, args),
            ExprKind::Unary { op, operand } => {
                let (a, ty) = self.lower_expr(operand);
                let op_ir = match op {
                    UnaryOp::Neg => UnOpIr::Neg,
                    UnaryOp::Not => UnOpIr::Not,
                    UnaryOp::BitNot => UnOpIr::BitNot,
                };
                let ty = if *op == UnaryOp::Not {
                    ScalarType::I1
                } else {
                    ty
                };
                (self.emit(Instr::Un { op: op_ir, a, ty }), ty)
            }
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let (c, cty) = self.lower_expr(cond);
                let c = self.to_bool(c, cty);
                let (a, aty) = self.lower_expr(then_expr);
                let (b, bty) = self.lower_expr(else_expr);
                let ty = unify(aty, bty);
                let a = self.coerce(a, aty, ty);
                let b = self.coerce(b, bty, ty);
                (self.emit(Instr::Select { cond: c, a, b, ty }), ty)
            }
            ExprKind::Cast { ty, operand } => {
                let (a, from) = self.lower_expr(operand);
                let to = ScalarType::from(*ty);
                (self.coerce(a, from, to), to)
            }
            ExprKind::Assign { .. } | ExprKind::IncDec { .. } => {
                self.block("assignment used as a subexpression");
                let ty = ScalarType::I32;
                (self.emit(Instr::Const { val: 0.0, ty }), ty)
            }
        }
    }

    fn lower_ident(&mut self, name: &str) -> (ValueId, ScalarType) {
        if name == self.iv {
            let ty = ScalarType::I32;
            return (self.emit(Instr::IndVar { ty }), ty);
        }
        if let Some((v, ty)) = self.symbols.get(name) {
            return (*v, *ty);
        }
        if let Some(&red) = self.reduction_vars.get(name) {
            // Reading the accumulator outside its own update pattern defeats
            // reduction vectorization.
            let ty = self.reductions[red].ty;
            self.block(format!("accumulator `{name}` read outside reduction"));
            return (
                self.emit(Instr::Param {
                    name: name.into(),
                    ty,
                }),
                ty,
            );
        }
        let ty = self.scalar_ty(name).unwrap_or(ScalarType::I32);
        if self.written_outer_scalars.contains(name) {
            // Read of a scalar that is also written in this body and was not
            // recognized as a reduction: loop-carried scalar recurrence.
            self.block(format!("scalar recurrence through `{name}`"));
        }
        (
            self.emit(Instr::Param {
                name: name.into(),
                ty,
            }),
            ty,
        )
    }

    fn to_bool(&mut self, v: ValueId, ty: ScalarType) -> ValueId {
        if ty == ScalarType::I1 {
            return v;
        }
        let zero = self.emit(Instr::Const { val: 0.0, ty });
        self.emit(Instr::Cmp {
            op: CmpOp::Ne,
            a: v,
            b: zero,
            ty,
        })
    }

    fn lower_binary(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> (ValueId, ScalarType) {
        if op.is_logical() {
            let (a, aty) = self.lower_expr(lhs);
            let a = self.to_bool(a, aty);
            let (b, bty) = self.lower_expr(rhs);
            let b = self.to_bool(b, bty);
            let ir_op = if op == BinaryOp::LogAnd {
                BinOpIr::And
            } else {
                BinOpIr::Or
            };
            return (
                self.emit(Instr::Bin {
                    op: ir_op,
                    a,
                    b,
                    ty: ScalarType::I1,
                }),
                ScalarType::I1,
            );
        }
        let (a, aty) = self.lower_expr(lhs);
        let (b, bty) = self.lower_expr(rhs);
        let ty = unify(aty, bty);
        let a = self.coerce(a, aty, ty);
        let b = self.coerce(b, bty, ty);
        if op.is_comparison() {
            let cmp = match op {
                BinaryOp::Lt => CmpOp::Lt,
                BinaryOp::Le => CmpOp::Le,
                BinaryOp::Gt => CmpOp::Gt,
                BinaryOp::Ge => CmpOp::Ge,
                BinaryOp::Eq => CmpOp::Eq,
                _ => CmpOp::Ne,
            };
            return (self.emit(Instr::Cmp { op: cmp, a, b, ty }), ScalarType::I1);
        }
        let ir_op = match op {
            BinaryOp::Add => BinOpIr::Add,
            BinaryOp::Sub => BinOpIr::Sub,
            BinaryOp::Mul => BinOpIr::Mul,
            BinaryOp::Div => BinOpIr::Div,
            BinaryOp::Rem => BinOpIr::Rem,
            BinaryOp::Shl => BinOpIr::Shl,
            BinaryOp::Shr => BinOpIr::Shr,
            BinaryOp::BitAnd => BinOpIr::And,
            BinaryOp::BitOr => BinOpIr::Or,
            BinaryOp::BitXor => BinOpIr::Xor,
            _ => unreachable!("comparisons handled above"),
        };
        (
            self.emit(Instr::Bin {
                op: ir_op,
                a,
                b,
                ty,
            }),
            ty,
        )
    }

    fn lower_call(&mut self, callee: &str, args: &[Expr]) -> (ValueId, ScalarType) {
        let arg_vals: Vec<(ValueId, ScalarType)> =
            args.iter().map(|a| self.lower_expr(a)).collect();
        let (vectorizable, ty) = math_fn_info(callee).unwrap_or((
            false,
            arg_vals.first().map(|a| a.1).unwrap_or(ScalarType::I32),
        ));
        if math_fn_info(callee).is_none() {
            self.block(format!("call to unknown function `{callee}`"));
        }
        (
            self.emit(Instr::Call {
                name: callee.to_string(),
                args: arg_vals.iter().map(|a| a.0).collect(),
                ty,
                vectorizable,
            }),
            ty,
        )
    }

    // -----------------------------------------------------------------
    // Memory accesses
    // -----------------------------------------------------------------

    /// Analyzes an index expression: affine coefficients in the innermost IV
    /// plus which outer IVs and parameters appear in the base.
    fn affine(&mut self, e: &Expr) -> Affine {
        match &e.kind {
            ExprKind::IntLit(v) => Affine::constant(*v),
            ExprKind::Ident(name) => {
                if *name == self.iv {
                    Affine {
                        iv_coeff: 1,
                        offset: 0,
                        outer_ivs: HashSet::new(),
                        has_param: false,
                        affine: true,
                    }
                } else if self.outer.iter().any(|(n, _)| n == name) {
                    Affine {
                        iv_coeff: 0,
                        offset: 0,
                        outer_ivs: std::iter::once(name.clone()).collect(),
                        has_param: false,
                        affine: true,
                    }
                } else if let Some((v, _)) = self.symbols.get(name) {
                    // A local temp: if it holds a loaded value, the address
                    // is data-dependent → gather.
                    let _ = v;
                    Affine::non_affine()
                } else {
                    // Loop-invariant parameter (unknown base offset).
                    Affine {
                        iv_coeff: 0,
                        offset: 0,
                        outer_ivs: HashSet::new(),
                        has_param: true,
                        affine: true,
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.affine(lhs);
                let b = self.affine(rhs);
                match op {
                    BinaryOp::Add => a.add(&b, 1),
                    BinaryOp::Sub => a.add(&b, -1),
                    BinaryOp::Mul => a.mul(&b),
                    BinaryOp::Shl => {
                        // e << c ≡ e * 2^c
                        if b.is_const() && b.offset >= 0 && b.offset < 32 {
                            a.scale(1 << b.offset)
                        } else {
                            Affine::non_affine()
                        }
                    }
                    BinaryOp::Div | BinaryOp::Rem | BinaryOp::Shr => {
                        if a.is_const() && b.is_const() {
                            match op {
                                BinaryOp::Div if b.offset != 0 => {
                                    Affine::constant(a.offset / b.offset)
                                }
                                BinaryOp::Rem if b.offset != 0 => {
                                    Affine::constant(a.offset % b.offset)
                                }
                                BinaryOp::Shr => Affine::constant(a.offset >> (b.offset & 63)),
                                _ => Affine::non_affine(),
                            }
                        } else {
                            Affine::non_affine()
                        }
                    }
                    _ => Affine::non_affine(),
                }
            }
            ExprKind::Unary {
                op: UnaryOp::Neg,
                operand,
            } => self.affine(operand).scale(-1),
            ExprKind::Cast { operand, .. } => self.affine(operand),
            ExprKind::Index { .. } | ExprKind::Call { .. } => Affine::non_affine(),
            _ => Affine::non_affine(),
        }
    }

    /// Builds (or CSE-reuses) the [`MemAccess`] for an array subscript
    /// expression and returns the access index.
    fn analyze_access(&mut self, e: &Expr, is_store: bool) -> Option<usize> {
        let (array, indices) = e.as_array_access()?;
        let array = array.to_string();
        let info = match self.scopes.arrays.get(&array) {
            Some(i) => i.clone(),
            None => {
                self.block(format!("subscript of non-array `{array}`"));
                return None;
            }
        };
        // Dimension coefficients for linearization.
        let ndims = if info.dims.is_empty() {
            1
        } else {
            info.dims.len()
        };
        if indices.len() != ndims {
            self.block(format!(
                "partial indexing of `{array}` ({} of {} dims)",
                indices.len(),
                ndims
            ));
            return None;
        }
        let mut combined = Affine::constant(0);
        for (k, idx) in indices.iter().enumerate() {
            let coeff: i64 = if info.dims.is_empty() {
                1
            } else {
                info.dims[k + 1..].iter().product::<u64>() as i64
            };
            let a = self.affine(idx).scale(coeff);
            combined = combined.add(&a, 1);
        }
        // Lower index sub-expressions that feed gathers so their cost is
        // modelled (`a[b[i]]` performs the `b[i]` load).
        if !combined.affine {
            for idx in &indices {
                let _ = self.lower_expr(idx);
            }
        }

        let stride_per_iter = combined.iv_coeff.saturating_mul(self.step);
        let kind = if !combined.affine {
            AccessKind::Gather
        } else if combined.iv_coeff == 0 {
            AccessKind::Invariant
        } else if stride_per_iter == 1 {
            AccessKind::Unit
        } else {
            AccessKind::Strided(stride_per_iter)
        };
        // Fold the loop start into the constant offset.
        let offset = combined.offset + combined.iv_coeff * self.start;
        let elem = u64::from(info.ty.size_bytes());
        let aligned = info.alignment >= 32
            && !combined.has_param
            && combined.outer_ivs.is_empty()
            && (offset.unsigned_abs() * elem) % 32 == 0;
        let reuse_trips: u64 = self
            .outer
            .iter()
            .filter(|(n, _)| combined.outer_ivs.contains(n))
            .map(|(_, t)| (*t).max(1))
            .product::<u64>()
            .max(1);
        let outer_var = if reuse_trips == 1 {
            OuterVariation::Invariant
        } else {
            OuterVariation::Varies
        };
        let predicated = self.mask.is_some();

        self.used_arrays.insert(array.clone(), info.clone());

        let acc = MemAccess {
            array: array.clone(),
            ty: info.ty,
            kind,
            offset,
            is_store,
            predicated,
            aligned,
            outer: outer_var,
            reuse_trips,
            array_bytes: info.bytes,
        };
        // Reuse an identical existing access-site for loads (CSE handles the
        // value; the site list should still reflect distinct sites, so only
        // exact duplicates collapse).
        if !is_store {
            if let Some(pos) = self.accesses.iter().position(|x| *x == acc) {
                return Some(pos);
            }
        }
        self.accesses.push(acc);
        Some(self.accesses.len() - 1)
    }

    fn lower_load(&mut self, e: &Expr) -> (ValueId, ScalarType) {
        match self.analyze_access(e, false) {
            Some(idx) => {
                let ty = self.accesses[idx].ty;
                let key = (
                    self.accesses[idx].array.clone(),
                    self.accesses[idx].kind,
                    self.accesses[idx].offset,
                    self.accesses[idx].predicated,
                );
                if self.accesses[idx].kind != AccessKind::Gather {
                    if let Some(v) = self.load_cse.get(&key) {
                        return (*v, ty);
                    }
                }
                let v = self.emit(Instr::Load { access: idx, ty });
                self.load_cse.insert(key, v);
                (v, ty)
            }
            None => {
                let ty = ScalarType::I32;
                (self.emit(Instr::Const { val: 0.0, ty }), ty)
            }
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Block(stmts) => {
                for s in stmts {
                    self.lower_stmt(s);
                }
            }
            StmtKind::Decl { ty, declarators } => {
                for d in declarators {
                    if !d.dims.is_empty() {
                        self.block(format!("local array `{}` in loop body", d.name));
                        continue;
                    }
                    let sty = ScalarType::from(*ty);
                    self.local_tys.insert(d.name.clone(), sty);
                    if let Some(init) = &d.init {
                        let (v, vty) = self.lower_expr(init);
                        let v = self.coerce(v, vty, sty);
                        self.symbols.insert(d.name.clone(), (v, sty));
                    }
                }
            }
            StmtKind::Expr(e) => self.lower_expr_stmt(e),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => self.lower_if(cond, then_branch, else_branch.as_deref()),
            StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue => {
                self.block("early exit inside loop body");
            }
            StmtKind::For { .. } | StmtKind::While { .. } => {
                // Unreachable for true innermost loops; defensive.
                self.block("nested loop inside innermost body");
            }
            StmtKind::Empty => {}
        }
    }

    fn lower_expr_stmt(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign { op, target, value } => {
                self.lower_assign(op.as_ref().copied(), target, value)
            }
            ExprKind::IncDec { target, delta, .. } => {
                // x++ ≡ x += 1.
                let one = Expr::new(ExprKind::IntLit(*delta), e.span);
                self.lower_assign(Some(BinaryOp::Add), target, &one);
            }
            _ => {
                let _ = self.lower_expr(e);
            }
        }
    }

    fn lower_if(&mut self, cond: &Expr, then_branch: &Stmt, else_branch: Option<&Stmt>) {
        let (c, cty) = self.lower_expr(cond);
        let c = self.to_bool(c, cty);
        self.predicated_any = true;

        let outer_mask = self.mask;
        let then_mask = match outer_mask {
            Some(m) => self.emit(Instr::Bin {
                op: BinOpIr::And,
                a: m,
                b: c,
                ty: ScalarType::I1,
            }),
            None => c,
        };

        let before = self.symbols.clone();
        self.mask = Some(then_mask);
        self.lower_stmt(then_branch);
        let then_syms = self.symbols.clone();

        let else_syms = if let Some(eb) = else_branch {
            self.symbols = before.clone();
            let not_c = self.emit(Instr::Un {
                op: UnOpIr::Not,
                a: c,
                ty: ScalarType::I1,
            });
            let else_mask = match outer_mask {
                Some(m) => self.emit(Instr::Bin {
                    op: BinOpIr::And,
                    a: m,
                    b: not_c,
                    ty: ScalarType::I1,
                }),
                None => not_c,
            };
            self.mask = Some(else_mask);
            self.lower_stmt(eb);
            self.symbols.clone()
        } else {
            before.clone()
        };
        self.mask = outer_mask;

        // Merge scalar updates with selects (φ-nodes after if-conversion).
        let mut names: Vec<String> = then_syms
            .keys()
            .chain(else_syms.keys())
            .cloned()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        names.sort();
        let mut merged = before.clone();
        for name in names {
            let t = then_syms.get(&name).copied();
            let e = else_syms.get(&name).copied();
            match (t, e) {
                (Some((tv, tty)), Some((ev, ety))) if tv != ev => {
                    let ty = unify(tty, ety);
                    let tv = self.coerce(tv, tty, ty);
                    let ev = self.coerce(ev, ety, ty);
                    let sel = self.emit(Instr::Select {
                        cond: then_mask,
                        a: tv,
                        b: ev,
                        ty,
                    });
                    merged.insert(name, (sel, ty));
                }
                (Some(v), _) | (_, Some(v)) => {
                    merged.insert(name, v);
                }
                (None, None) => {}
            }
        }
        self.symbols = merged;
    }

    fn lower_assign(&mut self, op: Option<BinaryOp>, target: &Expr, value: &Expr) {
        match &target.kind {
            ExprKind::Index { .. } => {
                // LICM-style scalar promotion: a compound update of a
                // loop-invariant address (`C[i][j] += …` inside the k
                // loop) is a memory reduction; real compilers promote it
                // to a register before the vectorizer runs, so we lower it
                // as a reduction rather than a load/store per iteration.
                if let Some(cop) = op {
                    let kind = match cop {
                        BinaryOp::Add | BinaryOp::Sub => Some(ReductionKind::Sum),
                        BinaryOp::Mul => Some(ReductionKind::Product),
                        BinaryOp::BitAnd => Some(ReductionKind::And),
                        BinaryOp::BitOr => Some(ReductionKind::Or),
                        BinaryOp::BitXor => Some(ReductionKind::Xor),
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        if let Some(idx) = self.analyze_access(target, true) {
                            if self.accesses[idx].kind == AccessKind::Invariant
                                && !self.accesses[idx].predicated
                            {
                                let ty = self.accesses[idx].ty;
                                // Stores are never CSE'd, so the entry we
                                // just pushed is the last one; drop it —
                                // the promoted access happens outside the
                                // loop.
                                debug_assert_eq!(idx, self.accesses.len() - 1);
                                self.accesses.pop();
                                let (v, vty) = self.lower_expr(value);
                                let v = self.coerce(v, vty, ty);
                                let name = nvc_frontend::printer::print_expr(target);
                                let red = self.intern_reduction(&name, kind, ty);
                                self.emit(Instr::ReduceUpdate { red, value: v, ty });
                                return;
                            }
                            // Not invariant: undo the probe store entry and
                            // fall through to the load/combine/store path.
                            debug_assert_eq!(idx, self.accesses.len() - 1);
                            self.accesses.pop();
                        }
                    }
                }
                let (mut v, mut vty) = self.lower_expr(value);
                if let Some(cop) = op {
                    // a[i] op= x → load, combine, store.
                    let (old, oty) = self.lower_load(target);
                    let ty = unify(oty, vty);
                    let ov = self.coerce(old, oty, ty);
                    let nv = self.coerce(v, vty, ty);
                    let ir_op = match cop {
                        BinaryOp::Add => BinOpIr::Add,
                        BinaryOp::Sub => BinOpIr::Sub,
                        BinaryOp::Mul => BinOpIr::Mul,
                        BinaryOp::Div => BinOpIr::Div,
                        BinaryOp::Rem => BinOpIr::Rem,
                        BinaryOp::Shl => BinOpIr::Shl,
                        BinaryOp::Shr => BinOpIr::Shr,
                        BinaryOp::BitAnd => BinOpIr::And,
                        BinaryOp::BitOr => BinOpIr::Or,
                        BinaryOp::BitXor => BinOpIr::Xor,
                        _ => {
                            self.block("unsupported compound store");
                            return;
                        }
                    };
                    v = self.emit(Instr::Bin {
                        op: ir_op,
                        a: ov,
                        b: nv,
                        ty,
                    });
                    vty = ty;
                }
                if let Some(idx) = self.analyze_access(target, true) {
                    let ty = self.accesses[idx].ty;
                    let v = self.coerce(v, vty, ty);
                    self.emit(Instr::Store {
                        access: idx,
                        value: v,
                    });
                }
            }
            ExprKind::Ident(name) => self.lower_scalar_assign(op, name, value),
            _ => self.block("unsupported assignment target"),
        }
    }

    fn lower_scalar_assign(&mut self, op: Option<BinaryOp>, name: &str, value: &Expr) {
        if name == self.iv {
            self.block("induction variable modified in body");
            return;
        }
        let is_local = self.local_tys.contains_key(name) && !self.scalar_ty_is_outer(name);
        if is_local {
            // Pure SSA rename of a body-local temporary.
            let (v, vty) = self.lower_expr(value);
            let sty = self.local_tys[name];
            let newv = if let Some(cop) = op {
                let (old, oty) = match self.symbols.get(name) {
                    Some(x) => *x,
                    None => {
                        self.block(format!("use of uninitialized local `{name}`"));
                        return;
                    }
                };
                let ty = unify(oty, vty);
                let a = self.coerce(old, oty, ty);
                let b = self.coerce(v, vty, ty);
                let ir_op = bin_ir(cop).unwrap_or(BinOpIr::Add);
                let r = self.emit(Instr::Bin {
                    op: ir_op,
                    a,
                    b,
                    ty,
                });
                self.coerce(r, ty, sty)
            } else {
                self.coerce(v, vty, sty)
            };
            self.symbols.insert(name.to_string(), (newv, sty));
            return;
        }

        // Outer-scope scalar: reduction patterns or blockers.
        let ty = self.scalar_ty(name).unwrap_or(ScalarType::I32);
        if let Some(cop) = op {
            let kind = match cop {
                BinaryOp::Add | BinaryOp::Sub => Some(ReductionKind::Sum),
                BinaryOp::Mul => Some(ReductionKind::Product),
                BinaryOp::BitAnd => Some(ReductionKind::And),
                BinaryOp::BitOr => Some(ReductionKind::Or),
                BinaryOp::BitXor => Some(ReductionKind::Xor),
                _ => None,
            };
            match kind {
                Some(kind) if !mentions(value, name) => {
                    let (v, vty) = self.lower_expr(value);
                    let v = self.coerce(v, vty, ty);
                    let red = self.intern_reduction(name, kind, ty);
                    self.emit(Instr::ReduceUpdate { red, value: v, ty });
                }
                _ => self.block(format!("unrecognized update of outer scalar `{name}`")),
            }
            return;
        }

        // Plain `name = value`.
        if let Some((kind, contrib)) = match_reduction_rhs(name, value) {
            let (v, vty) = self.lower_expr(contrib);
            let v = self.coerce(v, vty, ty);
            let red = self.intern_reduction(name, kind, ty);
            self.emit(Instr::ReduceUpdate { red, value: v, ty });
            return;
        }
        if mentions(value, name) {
            self.block(format!("scalar recurrence through `{name}`"));
            return;
        }
        // Live-out overwrite (`last = a[i];`): the value computation costs,
        // the final-value extraction is free in our model.
        let (v, vty) = self.lower_expr(value);
        let _ = self.coerce(v, vty, ty);
        self.written_outer_scalars.insert(name.to_string());
    }

    fn scalar_ty_is_outer(&self, name: &str) -> bool {
        self.scopes.scalar_tys.contains_key(name) && !self.local_tys.contains_key(name)
    }

    fn intern_reduction(&mut self, name: &str, kind: ReductionKind, ty: ScalarType) -> usize {
        if let Some(&r) = self.reduction_vars.get(name) {
            if self.reductions[r].kind != kind {
                self.block(format!("conflicting reduction kinds on `{name}`"));
            }
            return r;
        }
        self.reductions.push(Reduction {
            var: name.to_string(),
            kind,
            ty,
        });
        let idx = self.reductions.len() - 1;
        self.reduction_vars.insert(name.to_string(), idx);
        idx
    }
}

/// Affine form of an index expression: `iv_coeff * i + offset (+ outer/base)`.
#[derive(Debug, Clone)]
struct Affine {
    iv_coeff: i64,
    offset: i64,
    outer_ivs: HashSet<String>,
    has_param: bool,
    affine: bool,
}

impl Affine {
    fn constant(v: i64) -> Self {
        Affine {
            iv_coeff: 0,
            offset: v,
            outer_ivs: HashSet::new(),
            has_param: false,
            affine: true,
        }
    }

    fn non_affine() -> Self {
        Affine {
            iv_coeff: 0,
            offset: 0,
            outer_ivs: HashSet::new(),
            has_param: false,
            affine: false,
        }
    }

    fn is_const(&self) -> bool {
        self.affine && self.iv_coeff == 0 && self.outer_ivs.is_empty() && !self.has_param
    }

    fn add(&self, other: &Affine, sign: i64) -> Affine {
        if !self.affine || !other.affine {
            return Affine::non_affine();
        }
        let mut outer = self.outer_ivs.clone();
        outer.extend(other.outer_ivs.iter().cloned());
        Affine {
            iv_coeff: self.iv_coeff + sign * other.iv_coeff,
            offset: self.offset + sign * other.offset,
            outer_ivs: outer,
            has_param: self.has_param || other.has_param,
            affine: true,
        }
    }

    fn scale(&self, c: i64) -> Affine {
        if !self.affine {
            return Affine::non_affine();
        }
        Affine {
            iv_coeff: self.iv_coeff * c,
            offset: self.offset * c,
            outer_ivs: self.outer_ivs.clone(),
            has_param: self.has_param,
            affine: true,
        }
    }

    fn mul(&self, other: &Affine) -> Affine {
        if self.is_const() {
            return other.scale(self.offset);
        }
        if other.is_const() {
            return self.scale(other.offset);
        }
        // Product of two non-constant terms: affine only when neither side
        // involves the innermost IV (e.g. `i_outer * N`); we keep it as a
        // base term.
        if self.affine && other.affine && self.iv_coeff == 0 && other.iv_coeff == 0 {
            let mut outer = self.outer_ivs.clone();
            outer.extend(other.outer_ivs.iter().cloned());
            return Affine {
                iv_coeff: 0,
                offset: 0,
                outer_ivs: outer,
                has_param: self.has_param || other.has_param,
                affine: true,
            };
        }
        Affine::non_affine()
    }
}

fn bin_ir(op: BinaryOp) -> Option<BinOpIr> {
    Some(match op {
        BinaryOp::Add => BinOpIr::Add,
        BinaryOp::Sub => BinOpIr::Sub,
        BinaryOp::Mul => BinOpIr::Mul,
        BinaryOp::Div => BinOpIr::Div,
        BinaryOp::Rem => BinOpIr::Rem,
        BinaryOp::Shl => BinOpIr::Shl,
        BinaryOp::Shr => BinOpIr::Shr,
        BinaryOp::BitAnd => BinOpIr::And,
        BinaryOp::BitOr => BinOpIr::Or,
        BinaryOp::BitXor => BinOpIr::Xor,
        _ => return None,
    })
}

/// Usual arithmetic conversions on IR types.
fn unify(a: ScalarType, b: ScalarType) -> ScalarType {
    use ScalarType::*;
    if a == b {
        return a;
    }
    if a == F64 || b == F64 {
        return F64;
    }
    if a == F32 || b == F32 {
        return F32;
    }
    if a == I64 || b == I64 {
        return I64;
    }
    // Integer promotion.
    I32
}

/// Does `e` reference identifier `name` anywhere?
fn mentions(e: &Expr, name: &str) -> bool {
    match &e.kind {
        ExprKind::Ident(n) => n == name,
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) => false,
        ExprKind::Index { base, index } => mentions(base, name) || mentions(index, name),
        ExprKind::Call { args, .. } => args.iter().any(|a| mentions(a, name)),
        ExprKind::Unary { operand, .. } => mentions(operand, name),
        ExprKind::Binary { lhs, rhs, .. } => mentions(lhs, name) || mentions(rhs, name),
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => mentions(cond, name) || mentions(then_expr, name) || mentions(else_expr, name),
        ExprKind::Cast { operand, .. } => mentions(operand, name),
        ExprKind::Assign { target, value, .. } => mentions(target, name) || mentions(value, name),
        ExprKind::IncDec { target, .. } => mentions(target, name),
    }
}

/// Matches `t = <rhs>` reduction forms, returning the kind and the
/// non-accumulator contribution expression.
fn match_reduction_rhs<'e>(t: &str, rhs: &'e Expr) -> Option<(ReductionKind, &'e Expr)> {
    match &rhs.kind {
        // t = t ⊕ e  /  t = e ⊕ t
        ExprKind::Binary { op, lhs, rhs: r } => {
            let kind = match op {
                BinaryOp::Add => ReductionKind::Sum,
                BinaryOp::Mul => ReductionKind::Product,
                BinaryOp::BitAnd => ReductionKind::And,
                BinaryOp::BitOr => ReductionKind::Or,
                BinaryOp::BitXor => ReductionKind::Xor,
                BinaryOp::Sub => ReductionKind::Sum, // t = t - e is a sum of negatives
                _ => return None,
            };
            if is_ident(lhs, t) && !mentions(r, t) {
                return Some((kind, r));
            }
            if is_ident(r, t) && !mentions(lhs, t) && *op != BinaryOp::Sub {
                return Some((kind, lhs));
            }
            None
        }
        // t = cond ? x : y  with {x, y} = {t, e}: min/max reduction.
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let (e, picks_e_when_true) = if is_ident(then_expr, t) && !mentions(else_expr, t) {
                (else_expr.as_ref(), false)
            } else if is_ident(else_expr, t) && !mentions(then_expr, t) {
                (then_expr.as_ref(), true)
            } else {
                return None;
            };
            // The condition must compare t with e (either order).
            let ExprKind::Binary { op, lhs, rhs: r } = &cond.kind else {
                return None;
            };
            if !op.is_comparison() {
                return None;
            }
            let (t_on_left, valid) = if is_ident(lhs, t) {
                (true, exprs_equal(r, e))
            } else if is_ident(r, t) {
                (false, exprs_equal(lhs, e))
            } else {
                return None;
            };
            if !valid {
                return None;
            }
            // Determine min vs max: we pick e when cond true (or t otherwise).
            // cond ≡ t CMP e (after normalization).
            let cmp = if t_on_left {
                *op
            } else {
                match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::Le => BinaryOp::Ge,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::Ge => BinaryOp::Le,
                    other => *other,
                }
            };
            // If we keep e when (t < e) → new value is the larger → Max.
            let kind = match (cmp, picks_e_when_true) {
                (BinaryOp::Lt | BinaryOp::Le, true) => ReductionKind::Max,
                (BinaryOp::Gt | BinaryOp::Ge, true) => ReductionKind::Min,
                (BinaryOp::Lt | BinaryOp::Le, false) => ReductionKind::Min,
                (BinaryOp::Gt | BinaryOp::Ge, false) => ReductionKind::Max,
                _ => return None,
            };
            Some((kind, e))
        }
        // t = fmaxf(t, e) and friends.
        ExprKind::Call { callee, args } if args.len() == 2 => {
            let kind = match callee.as_str() {
                "fmax" | "fmaxf" | "max" => ReductionKind::Max,
                "fmin" | "fminf" | "min" => ReductionKind::Min,
                _ => return None,
            };
            if is_ident(&args[0], t) && !mentions(&args[1], t) {
                Some((kind, &args[1]))
            } else if is_ident(&args[1], t) && !mentions(&args[0], t) {
                Some((kind, &args[0]))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn is_ident(e: &Expr, name: &str) -> bool {
    matches!(&e.kind, ExprKind::Ident(n) if n == name)
}

/// Structural expression equality ignoring spans (shared with `nvc-polly`).
pub fn exprs_equal_pub(a: &Expr, b: &Expr) -> bool {
    exprs_equal(a, b)
}

/// Structural expression equality ignoring spans.
fn exprs_equal(a: &Expr, b: &Expr) -> bool {
    use ExprKind::*;
    match (&a.kind, &b.kind) {
        (IntLit(x), IntLit(y)) => x == y,
        (FloatLit(x), FloatLit(y)) => x == y,
        (Ident(x), Ident(y)) => x == y,
        (
            Index {
                base: b1,
                index: i1,
            },
            Index {
                base: b2,
                index: i2,
            },
        ) => exprs_equal(b1, b2) && exprs_equal(i1, i2),
        (
            Binary {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            Binary {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && exprs_equal(l1, l2) && exprs_equal(r1, r2),
        (
            Unary {
                op: o1,
                operand: x1,
            },
            Unary {
                op: o2,
                operand: x2,
            },
        ) => o1 == o2 && exprs_equal(x1, x2),
        (
            Cast {
                ty: t1,
                operand: x1,
            },
            Cast {
                ty: t2,
                operand: x2,
            },
        ) => t1 == t2 && exprs_equal(x1, x2),
        (
            Call {
                callee: c1,
                args: a1,
            },
            Call {
                callee: c2,
                args: a2,
            },
        ) => {
            c1 == c2
                && a1.len() == a2.len()
                && a1.iter().zip(a2.iter()).all(|(x, y)| exprs_equal(x, y))
        }
        _ => false,
    }
}

/// Vectorizable math functions and their result types.
fn math_fn_info(name: &str) -> Option<(bool, ScalarType)> {
    let f32s = [
        "sqrtf", "fabsf", "fmaxf", "fminf", "expf", "logf", "sinf", "cosf", "floorf", "ceilf",
    ];
    let f64s = [
        "sqrt", "fabs", "fmax", "fmin", "exp", "log", "sin", "cos", "floor", "ceil",
    ];
    let ints = ["abs", "max", "min"];
    if f32s.contains(&name) {
        Some((true, ScalarType::F32))
    } else if f64s.contains(&name) {
        Some((true, ScalarType::F64))
    } else if ints.contains(&name) {
        Some((true, ScalarType::I32))
    } else {
        None
    }
}

/// Lowers one innermost loop.
fn lower_innermost(
    stmt: &Stmt,
    f: &Function,
    source: &str,
    env: &ParamEnv,
    outer: &[(String, u64)],
    scopes: &ScopeInfo,
) -> Result<LoweredLoop, IrError> {
    let (header, body_stmt, countable) = match &stmt.kind {
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let h = analyze_header(init.as_deref(), cond.as_ref(), step.as_ref(), env);
            (h, body.as_ref(), true)
        }
        StmtKind::While { body, .. } => (None, body.as_ref(), false),
        _ => {
            return Err(IrError::UnsupportedLoopForm(
                "statement is not a loop".into(),
            ))
        }
    };

    let (iv, start, step, trip) = match &header {
        Some(h) => (h.iv.clone(), h.start, h.step, h.trip),
        None => (
            "<none>".to_string(),
            0,
            1,
            TripCount::Runtime(env.default_trip()),
        ),
    };

    let mut bl = BodyLowering {
        scopes,
        outer,
        iv,
        start,
        step,
        body: Vec::new(),
        accesses: Vec::new(),
        load_cse: HashMap::new(),
        reductions: Vec::new(),
        reduction_vars: HashMap::new(),
        symbols: HashMap::new(),
        local_tys: HashMap::new(),
        written_outer_scalars: HashSet::new(),
        mask: None,
        predicated_any: false,
        blockers: Vec::new(),
        used_arrays: BTreeMap::new(),
    };
    if header.is_none() && countable {
        bl.block("unrecognized for-loop header");
    }
    if !countable {
        bl.block("while loop is not countable");
    }
    bl.lower_stmt(body_stmt);

    let not_vectorizable = !bl.blockers.is_empty();
    let blocker = bl.blockers.first().cloned();
    let ir = LoopIr {
        ind_var: bl.iv.clone(),
        trip,
        step,
        body: bl.body,
        accesses: bl.accesses,
        reductions: bl.reductions,
        predicated: bl.predicated_any,
        not_vectorizable,
        blocker,
        outer: outer
            .iter()
            .map(|(_, t)| OuterLoopInfo { trip: *t })
            .collect(),
    };
    debug_assert_eq!(ir.validate(), Ok(()));

    // Source coordinates.
    let (header_line, text) = (stmt.span.line, stmt.span.text(source).to_string());
    let nest_text = text.clone();
    Ok(LoweredLoop {
        ir,
        function: f.name.clone(),
        loop_index: 0,
        header_line,
        text,
        nest_text,
        arrays: bl.used_arrays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::legal_max_vf;
    use nvc_frontend::parse_translation_unit;

    fn lower_first(src: &str, env: &ParamEnv) -> LoweredLoop {
        let tu = parse_translation_unit(src).expect("parse");
        let loops = lower_innermost_loops(&tu, src, env).expect("lower");
        assert!(!loops.is_empty(), "no loops found");
        loops.into_iter().next().unwrap()
    }

    #[test]
    fn dot_product_is_sum_reduction() {
        let src = "int vec[512];\nint f() { int sum = 0; for (int i = 0; i < 512; i++) { sum += vec[i]*vec[i]; } return sum; }";
        let l = lower_first(src, &ParamEnv::new());
        assert_eq!(l.ir.trip, TripCount::Constant(512));
        assert_eq!(l.ir.reductions.len(), 1);
        assert_eq!(l.ir.reductions[0].kind, ReductionKind::Sum);
        assert!(!l.ir.not_vectorizable);
        // vec[i] loaded once thanks to CSE.
        assert_eq!(l.ir.loads().count(), 1);
    }

    #[test]
    fn runtime_bound_is_runtime_trip() {
        let src = "int a[4096]; int b[4096];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i]; } }";
        let env = ParamEnv::new().with("n", 2000);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.trip, TripCount::Runtime(2000));
    }

    #[test]
    fn bound_expression_evaluates() {
        let src = "int a[4096];\nvoid f(int N) { for (int i = 0; i < N/2-1; i++) { a[i] = i; } }";
        let env = ParamEnv::new().with("N", 1000);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.trip.count(), 499);
    }

    #[test]
    fn strided_accesses_classified() {
        // Example #5 shape: b[2*i+1].
        let src = "float a[2048]; float b[4096];\nvoid f(int N) { for (int i = 0; i < N; i++) { a[i] = b[2*i+1]; } }";
        let env = ParamEnv::new().with("N", 1024);
        let l = lower_first(src, &env);
        let load = l.ir.loads().next().unwrap();
        assert_eq!(load.kind, AccessKind::Strided(2));
        assert_eq!(load.offset, 1);
        let store = l.ir.stores().next().unwrap();
        assert_eq!(store.kind, AccessKind::Unit);
    }

    #[test]
    fn manual_unroll_step2_strides() {
        // Example #1 shape: step 2 with offsets 0 and 1.
        let src = "int d[4096]; short s[4096];\nvoid f(int N) { for (int i = 0; i < N-1; i+=2) { d[i] = (int) s[i]; d[i+1] = (int) s[i+1]; } }";
        let env = ParamEnv::new().with("N", 1024);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.step, 2);
        let strides: Vec<_> = l.ir.accesses.iter().map(|a| a.kind).collect();
        assert!(strides.iter().all(|k| *k == AccessKind::Strided(2)));
        // Stores at offsets 0 and 1 with stride 2 are independent.
        assert!(legal_max_vf(&l.ir) > 64);
    }

    #[test]
    fn matmul_inner_loop_context() {
        let src = "float A[128][128]; float B[128][128]; float C[128][128];
void mm(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float s = 0.0;
            for (int k = 0; k < n; k++) { s += A[i][k] * B[k][j]; }
            C[i][j] = s;
        }
    }
}";
        let env = ParamEnv::new().with("n", 128);
        let tu = parse_translation_unit(src).unwrap();
        let loops = lower_innermost_loops(&tu, src, &env).unwrap();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.ir.outer.len(), 2);
        assert_eq!(l.ir.total_iterations(), 128 * 128 * 128);
        assert_eq!(l.ir.reductions.len(), 1);
        // A[i][k]: unit stride in k. B[k][j]: stride = 128 (row length).
        let kinds: Vec<_> = l.ir.loads().map(|a| a.kind).collect();
        assert!(kinds.contains(&AccessKind::Unit));
        assert!(kinds.contains(&AccessKind::Strided(128)));
        // A's base varies with outer i; B's with outer j.
        for a in l.ir.loads() {
            assert_eq!(a.reuse_trips, 128, "array {}", a.array);
        }
    }

    #[test]
    fn predicated_ternary_store() {
        let src = "int a[4096]; int b[4096];\nvoid f(int N) { for (int i=0;i<N*2;i++){ int j = a[i]; b[i] = (j > 255 ? 255 : 0); } }";
        let env = ParamEnv::new().with("N", 512);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.trip.count(), 1024);
        // Ternary lowers to select, not control flow: no predication needed.
        assert!(!l.ir.predicated);
        assert!(l.ir.body.iter().any(|i| matches!(i, Instr::Select { .. })));
        assert!(!l.ir.not_vectorizable);
    }

    #[test]
    fn if_statement_predicates_stores() {
        let src = "float a[4096]; float b[4096];\nvoid f(int n) { for (int i=0;i<n;i++) { if (b[i] > 0.0) { a[i] = b[i]; } } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.predicated);
        let store = l.ir.stores().next().unwrap();
        assert!(store.predicated);
        assert!(!l.ir.not_vectorizable);
    }

    #[test]
    fn if_else_merges_with_select() {
        let src = "int a[1024]; int out[1024];\nvoid f(int n) { for (int i=0;i<n;i++) { int t = 0; if (a[i] > 0) { t = 1; } else { t = 2; } out[i] = t; } }";
        let env = ParamEnv::new().with("n", 512);
        let l = lower_first(src, &env);
        assert!(l.ir.body.iter().any(|i| matches!(i, Instr::Select { .. })));
        assert!(!l.ir.not_vectorizable);
    }

    #[test]
    fn max_reduction_via_ternary() {
        let src = "float x[4096];\nfloat f(int n) { float m = 0.0; for (int i=0;i<n;i++) { m = x[i] > m ? x[i] : m; } return m; }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.reductions.len(), 1);
        assert_eq!(l.ir.reductions[0].kind, ReductionKind::Max);
        assert!(!l.ir.not_vectorizable);
    }

    #[test]
    fn min_reduction_via_call() {
        let src = "float x[4096];\nfloat f(int n) { float m = 1e9; for (int i=0;i<n;i++) { m = fminf(m, x[i]); } return m; }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.reductions[0].kind, ReductionKind::Min);
        assert!(!l.ir.not_vectorizable);
    }

    #[test]
    fn gather_from_indirect_index() {
        let src = "int a[4096]; int idx[4096]; int out[4096];\nvoid f(int n) { for (int i=0;i<n;i++) { out[i] = a[idx[i]]; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.loads().any(|x| x.kind == AccessKind::Gather));
        assert!(!l.ir.not_vectorizable);
    }

    #[test]
    fn unknown_call_blocks_vectorization() {
        let src = "int a[128];\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = helper(i); } }";
        let env = ParamEnv::new().with("n", 128);
        let l = lower_first(src, &env);
        assert!(l.ir.not_vectorizable);
        assert!(l.ir.blocker.as_deref().unwrap().contains("helper"));
    }

    #[test]
    fn math_call_is_vectorizable() {
        let src = "float a[1024]; float b[1024];\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = sqrtf(b[i]); } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(!l.ir.not_vectorizable);
        assert!(l.ir.body.iter().any(|i| matches!(
            i,
            Instr::Call {
                vectorizable: true,
                ..
            }
        )));
    }

    #[test]
    fn scalar_recurrence_blocks() {
        let src = "float a[1024];\nfloat f(int n, float x) { for (int i=0;i<n;i++) { x = x * 0.5 + a[i]; } return x; }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.not_vectorizable);
    }

    #[test]
    fn early_exit_blocks() {
        let src = "int a[1024];\nint f(int n, int key) { int pos = 0; for (int i=0;i<n;i++) { if (a[i] == key) { pos = i; break; } } return pos; }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.not_vectorizable);
    }

    #[test]
    fn while_loop_is_scalar() {
        let src = "int a[1024];\nvoid f(int n) { int i = 0; while (i < n) { a[i] = i; i++; } }";
        let env = ParamEnv::new().with("n", 1024).with_default_trip(777);
        let l = lower_first(src, &env);
        assert!(l.ir.not_vectorizable);
        assert_eq!(l.ir.trip.count(), 777);
    }

    #[test]
    fn reverse_loop_recognized() {
        let src = "int a[1024]; int b[1024];\nvoid f(int n) { for (int i = n-1; i >= 0; i--) { a[i] = b[i]; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.trip.count(), 1024);
        assert_eq!(l.ir.step, -1);
        // Stride per iteration is -1: strided, not unit.
        assert!(l
            .ir
            .accesses
            .iter()
            .all(|a| a.kind == AccessKind::Strided(-1)));
    }

    #[test]
    fn pointer_param_arrays_use_env_sizes() {
        let src =
            "void f(float *dst, float *src, int n) { for (int i=0;i<n;i++) { dst[i] = src[i]; } }";
        let env = ParamEnv::new()
            .with("n", 4096)
            .with_array_len("dst", 4096)
            .with_array_len("src", 4096);
        let l = lower_first(src, &env);
        let a = l.ir.loads().next().unwrap();
        assert_eq!(a.array_bytes, 4096 * 4);
        assert!(!a.aligned, "pointer params have unknown alignment");
    }

    #[test]
    fn aligned_global_unit_access_is_aligned() {
        let src = "float a[1024] __attribute__((aligned(64))); float b[1024] __attribute__((aligned(64)));\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = b[i]; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.accesses.iter().all(|a| a.aligned));
    }

    #[test]
    fn offset_access_is_misaligned() {
        let src = "float a[1024] __attribute__((aligned(64))); float b[1025] __attribute__((aligned(64)));\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = b[i+1]; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        let load = l.ir.loads().next().unwrap();
        assert!(!load.aligned);
        assert_eq!(load.offset, 1);
    }

    #[test]
    fn compound_array_update_loads_and_stores() {
        let src = "float a[1024]; float b[1024];\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] += b[i]; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.loads().count(), 2); // a[i] and b[i]
        assert_eq!(l.ir.stores().count(), 1);
        assert!(!l.ir.not_vectorizable);
        // Same-iteration read-modify-write is safe.
        assert!(legal_max_vf(&l.ir) > 64);
    }

    #[test]
    fn iv_modification_in_body_blocks() {
        let src = "int a[1024];\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = 0; i += 1; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.not_vectorizable);
    }

    #[test]
    fn type_conversion_cast_emitted() {
        let src = "short s[1024]; int d[1024];\nvoid f(int n) { for (int i=0;i<n;i++) { d[i] = (int) s[i]; } }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert!(l.ir.body.iter().any(|i| matches!(
            i,
            Instr::Cast {
                from: ScalarType::I16,
                to: ScalarType::I32,
                ..
            }
        )));
    }

    #[test]
    fn counter_increment_is_sum_reduction() {
        let src = "int a[1024];\nint f(int n) { int count = 0; for (int i=0;i<n;i++) { if (a[i] > 0) { count++; } } return count; }";
        let env = ParamEnv::new().with("n", 1024);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.reductions.len(), 1);
        assert_eq!(l.ir.reductions[0].kind, ReductionKind::Sum);
        assert!(!l.ir.not_vectorizable);
        assert!(l.ir.predicated);
    }

    #[test]
    fn invariant_compound_store_promotes_to_reduction() {
        // GEMM's `C[i][j] += A[i][k] * B[k][j]` with innermost k.
        let src = "float A[64][64]; float B[64][64]; float C[64][64];
void mm() { for (int i=0;i<64;i++) for (int j=0;j<64;j++) for (int k=0;k<64;k++) { C[i][j] += A[i][k] * B[k][j]; } }";
        let l = lower_first(src, &ParamEnv::new());
        assert_eq!(l.ir.reductions.len(), 1);
        assert_eq!(l.ir.reductions[0].kind, ReductionKind::Sum);
        // Only the two loads remain as memory accesses: the C store is
        // promoted out of the loop.
        assert_eq!(l.ir.stores().count(), 0);
        assert_eq!(l.ir.loads().count(), 2);
        assert!(!l.ir.not_vectorizable);
        assert!(legal_max_vf(&l.ir) > 1);
    }

    #[test]
    fn variant_compound_store_stays_memory() {
        // a[i] += b[i] must remain a load/store pair.
        let src =
            "float a[128]; float b[128];\nvoid f() { for (int i=0;i<128;i++) { a[i] += b[i]; } }";
        let l = lower_first(src, &ParamEnv::new());
        assert_eq!(l.ir.reductions.len(), 0);
        assert_eq!(l.ir.stores().count(), 1);
    }

    #[test]
    fn tile_loop_bounds_recognized() {
        // The shape Polly's tiling emits: trip is compile-time 32 even
        // though `it` is only known at run time.
        let src = "float a[4096]; float b[4096];
void f(int n) {
    for (int it = 0; it < n; it += 32) {
        for (int i = it; i < it + 32; i++) { a[i] = b[i]; }
    }
}";
        let env = ParamEnv::new().with("n", 4096);
        let l = lower_first(src, &env);
        assert_eq!(l.ir.trip, TripCount::Constant(32));
        assert_eq!(l.ir.outer.len(), 1);
        assert_eq!(l.ir.outer[0].trip, 128);
    }

    #[test]
    fn validate_holds_for_all_lowered_bodies() {
        let srcs = [
            "int a[64]; void f(int n) { for (int i=0;i<n;i++) a[i] = i * 3 + 1; }",
            "float a[64]; float b[64]; void f(int n) { for (int i=0;i<n;i++) { a[i] = b[i] > 0.5 ? b[i] : 0.0; } }",
            "int a[64]; int f(int n) { int s = 0; for (int i=0;i<n;i++) { s += a[i] & 255; } return s; }",
        ];
        for src in srcs {
            let env = ParamEnv::new().with("n", 64);
            let l = lower_first(src, &env);
            assert_eq!(l.ir.validate(), Ok(()), "src: {src}");
        }
    }
}
