//! Loop intermediate representation and analyses for the NeuroVectorizer
//! reproduction.
//!
//! This crate stands in for the slice of Clang/LLVM the paper relies on: it
//! lowers innermost loops from the [`nvc_frontend`] AST into a typed,
//! SSA-style loop IR ([`LoopIr`]) and runs the analyses the LLVM loop
//! vectorizer needs to decide *legality* and *profitability inputs*:
//!
//! * affine memory-access classification (unit-stride / strided / gather /
//!   invariant) — [`access`];
//! * loop-carried dependence tests (ZIV and strong-SIV) that bound the legal
//!   vectorization factor — [`depend`];
//! * reduction recognition (sum/product/min/max/bitwise) — part of
//!   [`lower`];
//! * trip-count evaluation against runtime parameter bindings — [`lower`].
//!
//! The output of this crate feeds both the baseline cost model and the
//! vectorizer in `nvc-vectorizer`, and the performance model in
//! `nvc-machine`.
//!
//! # Example
//!
//! ```
//! use nvc_frontend::parse_translation_unit;
//! use nvc_ir::{lower::lower_innermost_loops, ParamEnv};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "int a[1024]; int b[1024];
//! void f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i] * 3; } }";
//! let tu = parse_translation_unit(src)?;
//! let env = ParamEnv::new().with("n", 1024);
//! let loops = lower_innermost_loops(&tu, src, &env)?;
//! assert_eq!(loops.len(), 1);
//! assert_eq!(loops[0].ir.trip.count(), 1024);
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod depend;
pub mod loop_ir;
pub mod lower;
pub mod program;
pub mod types;

use std::error::Error;
use std::fmt;

pub use access::{AccessKind, MemAccess, OuterVariation};
pub use depend::{analyze_dependences, legal_max_vf, DependenceSummary, PairVerdict};
pub use loop_ir::{
    BinOpIr, CmpOp, Instr, LoopIr, OuterLoopInfo, Reduction, ReductionKind, TripCount, UnOpIr,
    ValueId,
};
pub use lower::{lower_innermost_loops, lower_loop, LoweredLoop};
pub use program::{ArrayInfo, ParamEnv, ProgramIr};
pub use types::ScalarType;

/// Errors produced while lowering AST loops into [`LoopIr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The loop's induction variable or bounds could not be recognized.
    UnsupportedLoopForm(String),
    /// An expression uses a construct outside the supported subset.
    UnsupportedExpr(String),
    /// A referenced parameter has no binding and no estimate was available.
    UnboundParameter(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnsupportedLoopForm(s) => write!(f, "unsupported loop form: {s}"),
            IrError::UnsupportedExpr(s) => write!(f, "unsupported expression: {s}"),
            IrError::UnboundParameter(s) => write!(f, "unbound parameter `{s}`"),
        }
    }
}

impl Error for IrError {}
