//! The central metrics registry: named counters, gauges, and log₂
//! latency histograms, shared by handle (`Arc`) between the layer that
//! updates them and the layer that renders them.
//!
//! The histogram here is the one that used to live in
//! `nvc-serve::metrics`, lifted so hub, serve, and the trainer all
//! report through the same type — and fixed: `quantile_us` now
//! interpolates linearly *within* the log₂ bucket instead of returning
//! the bucket's power-of-2 upper bound, so a pile of 100 µs
//! observations reports p50 ≈ 97 µs rather than 128 µs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of log₂ microsecond buckets (covers < 1 µs .. > 2⁴⁶ µs).
const BUCKETS: usize = 48;

/// A lock-free latency histogram over log₂(µs) buckets.
///
/// Bucket `i` holds observations in `[2^(i-1), 2^i)` microseconds
/// (bucket 1 additionally holds 0); `2^i` is the bucket's exclusive
/// upper bound, reported as its `le` edge.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        let bucket = (64 - (us | 1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Estimated latency (µs) at quantile `q ∈ [0, 1]`, interpolated
    /// linearly within the containing log₂ bucket.
    ///
    /// Monotone in `q`, and exact at bucket boundaries: when the rank
    /// lands on the last observation of a bucket the estimate is the
    /// bucket's upper edge `2^i` — the value the pre-interpolation
    /// histogram reported for *every* rank in the bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                // Bucket i spans (lo, hi]; the rank sits `rank - cum`
                // observations deep into its `n`.
                let lo = if i <= 1 { 0 } else { 1u64 << (i - 1) };
                let hi = 1u64 << i;
                let frac = (rank - cum) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            cum += n;
        }
        1u64 << (BUCKETS - 1)
    }

    /// Per-bucket `(le, count)` pairs for every non-empty bucket, in
    /// ascending `le` order. Counts are *per bucket*, not cumulative —
    /// the JSON dump shape.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((1u64 << i, n))
            })
            .collect()
    }

    /// A plain-data copy of the histogram's full surface.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_us: self.sum_us(),
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge: goes up and down (in-flight requests, connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations (µs).
    pub sum_us: u64,
    /// Mean observation (µs).
    pub mean_us: f64,
    /// Interpolated median (µs).
    pub p50_us: u64,
    /// Interpolated 99th percentile (µs).
    pub p99_us: u64,
    /// Non-empty `(le, count)` buckets, per-bucket counts.
    pub buckets: Vec<(u64, u64)>,
}

/// Point-in-time copy of every instrument in a registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Get-or-register home for named instruments. Registration takes a
/// short mutex; the returned `Arc` is then updated lock-free, so hot
/// paths hold their handles instead of re-looking names up.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            lock(&self.counters)
                .entry(name.to_string())
                .or_insert_with(Arc::default),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(Arc::default),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(Arc::default),
        )
    }

    /// Copies every instrument, sorted by name (BTreeMap order).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Prometheus text exposition of every instrument. `labels` is
    /// spliced verbatim into each sample's label set (pass `""` for
    /// none, or e.g. `model="champion"`).
    pub fn render_prometheus(&self, labels: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let wrap = |extra: &str| -> String {
            match (labels.is_empty(), extra.is_empty()) {
                (true, true) => String::new(),
                (true, false) => format!("{{{extra}}}"),
                (false, true) => format!("{{{labels}}}"),
                (false, false) => format!("{{{labels},{extra}}}"),
            }
        };
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name}{} {v}", wrap(""));
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name}{} {v}", wrap(""));
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for &(le, n) in &h.buckets {
                cum += n;
                let _ = writeln!(out, "{name}_bucket{} {cum}", wrap(&format!("le=\"{le}\"")));
            }
            let _ = writeln!(out, "{name}_bucket{} {}", wrap("le=\"+Inf\""), h.count);
            let _ = writeln!(out, "{name}_sum{} {}", wrap(""), h.sum_us);
            let _ = writeln!(out, "{name}_count{} {}", wrap(""), h.count);
        }
        out
    }

    /// A standalone JSON rendering of [`MetricsRegistry::snapshot`]
    /// (serve and hub re-render the snapshot through their own `Json`
    /// values instead; this is for journals and ad-hoc dumps).
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in snap.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in snap.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in snap.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\"{name}\":{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p99_us\":{},\"buckets\":[",
                h.count, h.sum_us, h.p50_us, h.p99_us
            );
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { "," };
                let _ = write!(out, "{sep}[{le},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = LatencyHistogram::default();
        for _ in 0..98 {
            h.record(100); // bucket (64, 128]
        }
        for _ in 0..2 {
            h.record(10_000); // bucket (8192, 16384]
        }
        assert_eq!(h.count(), 100);
        // p50: rank 50 of 98 in (64, 128] → 64 + 64·(50/98) ≈ 96, far
        // tighter than the old bucket-edge answer of 128.
        let p50 = h.quantile_us(0.5);
        assert!((95..=98).contains(&p50), "p50 {p50} not near 96");
        // p99: rank 99, second bucket, 1 of 2 deep → 8192 + 8192/2.
        assert_eq!(h.quantile_us(0.99), 12_288);
        assert!(h.quantile_us(0.99) >= 8_192, "p99 must reach the slow tail");
        assert!((h.mean_us() - (98.0 * 100.0 + 2.0 * 10_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn one_sample_reports_its_bucket_edge_at_every_quantile() {
        let h = LatencyHistogram::default();
        h.record(100);
        // One observation: every quantile's rank is 1, frac = 1/1, so
        // the estimate is exactly the bucket's upper edge.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 128, "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_exact_at_bucket_boundaries() {
        let h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record(100); // bucket (64, 128]
        }
        for _ in 0..10 {
            h.record(1_000); // bucket (512, 1024]
        }
        // Rank straddle: q=0.5 is the last observation of the first
        // bucket → exactly its upper edge; q just above crosses into
        // the second bucket and must not go down.
        assert_eq!(h.quantile_us(0.5), 128);
        let mut prev = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile_us(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        assert_eq!(h.quantile_us(1.0), 1_024);
    }

    #[test]
    fn zero_and_tiny_observations_stay_in_the_low_bucket() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        let p100 = h.quantile_us(1.0);
        assert!(p100 <= 2, "sub-µs observations must stay tiny, got {p100}");
    }

    #[test]
    fn registry_returns_the_same_instrument_per_name() {
        let r = MetricsRegistry::default();
        let a = r.counter("reqs");
        let b = r.counter("reqs");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("reqs").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));

        let g = r.gauge("inflight");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(r.gauge("inflight").get(), 1);

        r.histogram("lat_us").record(100);
        assert_eq!(r.histogram("lat_us").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::default();
        r.counter("b").inc();
        r.counter("a").add(5);
        r.gauge("g").set(-2);
        r.histogram("h").record(10);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".to_string(), 5), ("b".to_string(), 1)]);
        assert_eq!(s.gauges, vec![("g".to_string(), -2)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].0, "h");
        assert_eq!(s.histograms[0].1.count, 1);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets_and_labels() {
        let r = MetricsRegistry::default();
        r.counter("reqs").add(7);
        let h = r.histogram("lat_us");
        h.record(100);
        h.record(100);
        h.record(10_000);
        let text = r.render_prometheus("model=\"m\"");
        assert!(text.contains("# TYPE reqs counter"));
        assert!(text.contains("reqs{model=\"m\"} 7"));
        assert!(text.contains("lat_us_bucket{model=\"m\",le=\"128\"} 2"));
        assert!(text.contains("lat_us_bucket{model=\"m\",le=\"16384\"} 3"));
        assert!(text.contains("lat_us_bucket{model=\"m\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum{model=\"m\"} 10200"));
        assert!(text.contains("lat_us_count{model=\"m\"} 3"));
        // And the no-label form stays valid.
        let bare = r.render_prometheus("");
        assert!(bare.contains("reqs 7"));
        assert!(bare.contains("lat_us_bucket{le=\"128\"} 2"));
    }

    #[test]
    fn json_rendering_round_trips_the_shape() {
        let r = MetricsRegistry::default();
        r.counter("c").inc();
        r.gauge("g").set(3);
        r.histogram("h").record(5);
        let j = r.render_json();
        assert!(j.contains("\"c\":1"));
        assert!(j.contains("\"g\":3"));
        assert!(j.contains("\"count\":1"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
