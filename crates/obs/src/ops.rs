//! Aggregate per-op kernel timers: a `(calls, total_ns)` relaxed-atomic
//! pair per instrumented kernel family, gated by `NVC_OPS=1` (or
//! [`set_ops_enabled`] in-process, which the metrics renderers and the
//! bench harness use).
//!
//! The instrumented sites are the kernels that dominate forward/backward
//! time: the three matmul orientations at the tensor layer, the graph's
//! fused `linear`, the two segment reductions, and the shared row-gather
//! helper. `segment_matmul` and the `matmul`/`matmul_tn`/`matmul_nt`
//! graph wrappers delegate to the instrumented accumulate kernels, so
//! they are deliberately *not* timed — one site per flop, no double
//! counting.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// The instrumented kernel families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Op {
    /// `C += A·B` (row-sharded).
    MatMul = 0,
    /// `C += Aᵀ·B` (the backward-pass weight-gradient orientation).
    MatMulTn = 1,
    /// `C += A·Bᵀ` (the backward-pass input-gradient orientation).
    MatMulNt = 2,
    /// The graph's fused `x·W + b` forward.
    Linear = 3,
    /// Per-segment softmax over ragged rows.
    SegmentSoftmax = 4,
    /// Per-segment weighted sum (attention pooling).
    SegmentWeightedSum = 5,
    /// Row gather (embedding lookups, both tape and parameter-direct).
    Gather = 6,
}

/// How many [`Op`] variants exist.
pub const OP_COUNT: usize = 7;

impl Op {
    /// Every op, in stable display order.
    pub const ALL: [Op; OP_COUNT] = [
        Op::MatMul,
        Op::MatMulTn,
        Op::MatMulNt,
        Op::Linear,
        Op::SegmentSoftmax,
        Op::SegmentWeightedSum,
        Op::Gather,
    ];

    /// Stable snake_case name (metrics keys, JSON fields).
    pub fn name(self) -> &'static str {
        match self {
            Op::MatMul => "matmul",
            Op::MatMulTn => "matmul_tn",
            Op::MatMulNt => "matmul_nt",
            Op::Linear => "linear",
            Op::SegmentSoftmax => "segment_softmax",
            Op::SegmentWeightedSum => "segment_weighted_sum",
            Op::Gather => "gather",
        }
    }
}

/// Tri-state enable flag: 0 = off, 1 = on, UNSET = consult `NVC_OPS`
/// once (the same lazy-env idiom as the kernel threading knobs).
const UNSET: u8 = 2;
static ENABLED: AtomicU8 = AtomicU8::new(UNSET);

static CALLS: [AtomicU64; OP_COUNT] = [const { AtomicU64::new(0) }; OP_COUNT];
static TOTAL_NS: [AtomicU64; OP_COUNT] = [const { AtomicU64::new(0) }; OP_COUNT];

/// True while op timers record. After the first call this is one
/// relaxed load.
#[inline]
pub fn ops_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = std::env::var_os("NVC_OPS").is_some_and(|v| v != "0" && !v.is_empty());
            ENABLED.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Forces op timing on or off, overriding `NVC_OPS`.
pub fn set_ops_enabled(on: bool) {
    ENABLED.store(on as u8, Ordering::Relaxed);
}

/// A running op timer; accumulates into the op's aggregate on drop.
/// Obtain via [`time_op`].
#[must_use = "the op's duration accumulates when this guard drops"]
pub struct OpTimer {
    op: Op,
    start: Option<Instant>,
}

/// Starts timing one invocation of `op`. Disabled: one relaxed load,
/// no clock read, nothing recorded.
#[inline]
pub fn time_op(op: Op) -> OpTimer {
    OpTimer {
        op,
        start: ops_enabled().then(Instant::now),
    }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            CALLS[self.op as usize].fetch_add(1, Ordering::Relaxed);
            TOTAL_NS[self.op as usize].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Aggregate for one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStat {
    /// Which kernel family.
    pub op: Op,
    /// Invocations timed.
    pub calls: u64,
    /// Total time across those invocations, nanoseconds.
    pub total_ns: u64,
}

/// Every op's aggregate, in [`Op::ALL`] order (including zero-call
/// ops — renderers filter).
pub fn ops_snapshot() -> Vec<OpStat> {
    Op::ALL
        .iter()
        .map(|&op| OpStat {
            op,
            calls: CALLS[op as usize].load(Ordering::Relaxed),
            total_ns: TOTAL_NS[op as usize].load(Ordering::Relaxed),
        })
        .collect()
}

/// Zeroes every op aggregate (bench harness A/B legs).
pub fn reset_ops() {
    for i in 0..OP_COUNT {
        CALLS[i].store(0, Ordering::Relaxed);
        TOTAL_NS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state again: one test, deterministic ordering.
    #[test]
    fn timers_accumulate_only_while_enabled() {
        set_ops_enabled(false);
        reset_ops();
        {
            let _t = time_op(Op::MatMul);
        }
        assert_eq!(ops_snapshot()[Op::MatMul as usize].calls, 0);

        set_ops_enabled(true);
        {
            let _t = time_op(Op::MatMul);
        }
        {
            let _t = time_op(Op::Gather);
        }
        let snap = ops_snapshot();
        assert_eq!(snap[Op::MatMul as usize].calls, 1);
        assert_eq!(snap[Op::Gather as usize].calls, 1);
        assert_eq!(snap[Op::Linear as usize].calls, 0);
        assert_eq!(snap.len(), OP_COUNT);
        for (i, s) in snap.iter().enumerate() {
            assert_eq!(s.op, Op::ALL[i]);
        }

        set_ops_enabled(false);
        {
            let _t = time_op(Op::MatMul);
        }
        assert_eq!(ops_snapshot()[Op::MatMul as usize].calls, 1);

        reset_ops();
        assert!(ops_snapshot()
            .iter()
            .all(|s| s.calls == 0 && s.total_ns == 0));
    }

    #[test]
    fn op_names_are_stable() {
        let names: Vec<_> = Op::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            [
                "matmul",
                "matmul_tn",
                "matmul_nt",
                "linear",
                "segment_softmax",
                "segment_weighted_sum",
                "gather"
            ]
        );
    }
}
