//! Request tracing: trace ids, scoped spans, and a fixed-size lock-free
//! ring of span records exportable as JSON lines.
//!
//! # Design
//!
//! * **Off by default, free when off.** [`span`] and [`request_scope`]
//!   cost one relaxed atomic load and allocate nothing until tracing is
//!   enabled (`NVC_TRACE=path` in the environment, `--trace` on the
//!   CLI, or [`enable_tracing`] in-process).
//! * **Trace ids ride thread-locals.** The service mints an id at the
//!   request boundary ([`request_scope`]); everything that runs on that
//!   thread inside the scope inherits it. Work that hops threads (the
//!   batch worker) carries the id explicitly on its job and records via
//!   [`record_span`], so a request's queue-wait and forward-pass spans
//!   land under the same trace id as its cache lookup.
//! * **Seqlock slots, never blocking.** Writers claim a monotonically
//!   increasing sequence number, zero the slot's seq, write the record
//!   fields, then publish the real seq. Readers load seq before and
//!   after the field reads and drop the record if it changed. A full
//!   ring overwrites the oldest slots — tracing is a window, not a log.
//!
//! # Record format
//!
//! One JSON object per line: `{"seq":17,"trace":3,"thread":2,
//! "name":"queue_wait","start_us":1204,"dur_us":88}`. `start_us` is
//! relative to the ring's creation; `trace` 0 means "outside any
//! request". Names are `&'static str` by construction, stored in the
//! ring as pointer + length.

use std::cell::Cell;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// Slots in the ring; at ~56 bytes each the ring is ≈ 3.7 MB, allocated
/// only once tracing is first enabled.
const RING_CAP: usize = 65_536;

struct Slot {
    /// 0 = empty or mid-write; otherwise the record's sequence number.
    seq: AtomicU64,
    trace: AtomicU64,
    thread: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
}

struct Ring {
    slots: Box<[Slot]>,
    /// Last sequence number claimed (seqs start at 1).
    head: AtomicU64,
    /// Time zero for `start_us`.
    epoch: Instant,
    /// Highest seq already written by [`flush_trace`].
    last_flushed: AtomicU64,
    /// Where flushes append, if configured. Also serializes flushers.
    path: Mutex<Option<PathBuf>>,
}

static RING: OnceLock<Ring> = OnceLock::new();
static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static ENV_INIT: Once = Once::new();

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
}

fn ring() -> &'static Ring {
    RING.get_or_init(|| Ring {
        slots: (0..RING_CAP)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                trace: AtomicU64::new(0),
                thread: AtomicU64::new(0),
                start_us: AtomicU64::new(0),
                dur_us: AtomicU64::new(0),
                name_ptr: AtomicUsize::new(0),
                name_len: AtomicUsize::new(0),
            })
            .collect(),
        head: AtomicU64::new(0),
        epoch: Instant::now(),
        last_flushed: AtomicU64::new(0),
        path: Mutex::new(None),
    })
}

fn thread_tag() -> u64 {
    THREAD_TAG.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

/// True while spans are being recorded. One relaxed load.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns span recording on (allocating the ring on first use).
pub fn enable_tracing() {
    let _ = ring();
    TRACING.store(true, Ordering::Relaxed);
}

/// Turns span recording off. The ring keeps its records; [`flush_trace`]
/// and [`export_records`] still see them.
pub fn disable_tracing() {
    TRACING.store(false, Ordering::Relaxed);
}

/// Points [`flush_trace`] at `path` (JSON lines, appended) and enables
/// tracing.
pub fn set_trace_output(path: impl Into<PathBuf>) {
    enable_tracing();
    *ring().path.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
}

/// Reads `NVC_TRACE` once per process: when set to a non-empty path,
/// tracing turns on and flushes append there. Idempotent — every
/// entrypoint (serve workers, hub, CLI) may call it.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Some(path) = std::env::var_os("NVC_TRACE") {
            if !path.is_empty() {
                set_trace_output(PathBuf::from(path));
            }
        }
    });
}

/// Mints a fresh, process-unique trace id (never 0).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The trace id active on this thread (0 = none).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// RAII guard restoring the previous thread-local trace id on drop.
#[must_use = "the trace id reverts when this guard drops"]
pub struct TraceScope {
    prev: u64,
    set: bool,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.set {
            CURRENT_TRACE.with(|c| c.set(self.prev));
        }
    }
}

/// Installs `id` as this thread's trace id until the guard drops.
pub fn trace_scope(id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    TraceScope { prev, set: true }
}

/// The request boundary: mints and installs a fresh trace id — unless
/// tracing is off (free no-op) or a trace id is already active, in
/// which case the outermost boundary wins and this scope does nothing.
/// (The hub mints per connection line; serve's `vectorize` then sees
/// that id already set and leaves it alone.)
pub fn request_scope() -> TraceScope {
    if !tracing_enabled() || current_trace() != 0 {
        return TraceScope {
            prev: 0,
            set: false,
        };
    }
    trace_scope(next_trace_id())
}

/// A span being timed; records into the ring on drop. Obtain via
/// [`span`].
#[must_use = "the span records its duration when this guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `name` under the current trace id. When tracing
/// is disabled this is one relaxed load, no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: tracing_enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_span(self.name, current_trace(), start, start.elapsed());
        }
    }
}

/// Records an instantaneous event (duration 0) under the current trace
/// — cache hits, dedup waits, anything that is a fact rather than a
/// duration.
#[inline]
pub fn marker(name: &'static str) {
    if tracing_enabled() {
        let now = Instant::now();
        record_span(name, current_trace(), now, Duration::ZERO);
    }
}

/// Writes one span record explicitly — the cross-thread path. The batch
/// worker calls this with the *job's* trace id and the timestamps it
/// measured, so the span lands under the originating request even
/// though it ran on a worker thread.
pub fn record_span(name: &'static str, trace: u64, start: Instant, dur: Duration) {
    if !tracing_enabled() {
        return;
    }
    let r = ring();
    let seq = r.head.fetch_add(1, Ordering::Relaxed) + 1;
    let slot = &r.slots[((seq - 1) % RING_CAP as u64) as usize];
    // Seqlock write: invalidate, fill, publish.
    slot.seq.store(0, Ordering::Release);
    slot.trace.store(trace, Ordering::Relaxed);
    slot.thread.store(thread_tag(), Ordering::Relaxed);
    slot.start_us.store(
        start.saturating_duration_since(r.epoch).as_micros() as u64,
        Ordering::Relaxed,
    );
    slot.dur_us.store(dur.as_micros() as u64, Ordering::Relaxed);
    slot.name_ptr
        .store(name.as_ptr() as usize, Ordering::Relaxed);
    slot.name_len.store(name.len(), Ordering::Relaxed);
    slot.seq.store(seq, Ordering::Release);
}

/// One exported span record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number (records are totally ordered).
    pub seq: u64,
    /// Trace id the span belongs to (0 = outside any request).
    pub trace: u64,
    /// Small per-thread tag (1, 2, …) — distinguishes threads without
    /// leaking OS ids.
    pub thread: u64,
    /// Span name.
    pub name: &'static str,
    /// Span start, µs since the ring's creation.
    pub start_us: u64,
    /// Span duration in µs (0 for markers).
    pub dur_us: u64,
}

impl TraceRecord {
    /// The record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seq\":{},\"trace\":{},\"thread\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            self.seq, self.trace, self.thread, self.name, self.start_us, self.dur_us
        )
    }
}

fn read_slot(slot: &Slot) -> Option<TraceRecord> {
    let seq = slot.seq.load(Ordering::Acquire);
    if seq == 0 {
        return None;
    }
    let rec = TraceRecord {
        seq,
        trace: slot.trace.load(Ordering::Relaxed),
        thread: slot.thread.load(Ordering::Relaxed),
        name: "", // filled in below, once the seq re-check proves the read untorn
        start_us: slot.start_us.load(Ordering::Relaxed),
        dur_us: slot.dur_us.load(Ordering::Relaxed),
    };
    let ptr = slot.name_ptr.load(Ordering::Relaxed);
    let len = slot.name_len.load(Ordering::Relaxed);
    if slot.seq.load(Ordering::Acquire) != seq {
        return None; // torn: a writer got in between.
    }
    // SAFETY: seq was stable across every field read, so ptr/len are the
    // pair one `record_span` call stored, and that call took a
    // `&'static str` — the bytes are static and valid UTF-8 forever.
    let name =
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len)) };
    Some(TraceRecord { name, ..rec })
}

/// Copies every currently valid record out of the ring, ordered by
/// sequence number. Allocates; meant for tests and exporters, not hot
/// paths.
pub fn export_records() -> Vec<TraceRecord> {
    let Some(r) = RING.get() else {
        return Vec::new();
    };
    let mut out: Vec<TraceRecord> = r.slots.iter().filter_map(read_slot).collect();
    out.sort_by_key(|rec| rec.seq);
    out
}

/// Appends every record newer than the previous flush to the configured
/// `NVC_TRACE` path as JSON lines. No-op when no path is set. Records
/// overwritten before a flush reaches them are lost (the ring is a
/// window); flush at request-burst boundaries (serve shutdown does).
pub fn flush_trace() {
    let Some(r) = RING.get() else {
        return;
    };
    // The path lock doubles as the flusher lock: one flusher at a time,
    // so last_flushed advances without racing appends.
    let path_guard = r.path.lock().unwrap_or_else(|e| e.into_inner());
    let Some(path) = path_guard.as_ref() else {
        return;
    };
    let head = r.head.load(Ordering::Relaxed);
    let from = r
        .last_flushed
        .load(Ordering::Relaxed)
        // Records more than a ring behind head are already overwritten.
        .max(head.saturating_sub(RING_CAP as u64));
    if head == from {
        return;
    }
    let mut file = match OpenOptions::new().create(true).append(true).open(path) {
        Ok(f) => f,
        Err(_) => return, // tracing must never take the service down.
    };
    let mut buf = String::new();
    for seq in from + 1..=head {
        let slot = &r.slots[((seq - 1) % RING_CAP as u64) as usize];
        if let Some(rec) = read_slot(slot) {
            if rec.seq == seq {
                buf.push_str(&rec.to_json_line());
                buf.push('\n');
            }
        }
    }
    let _ = file.write_all(buf.as_bytes());
    r.last_flushed.store(head, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; keep everything in one test so
    // enable/disable ordering is deterministic under the parallel
    // harness.
    #[test]
    fn spans_scopes_and_the_ring_work_end_to_end() {
        assert!(!tracing_enabled());
        // Disabled: spans are inert and record nothing.
        {
            let _g = span("ignored");
        }
        assert!(export_records().is_empty());
        assert_eq!(current_trace(), 0);

        enable_tracing();
        let t1 = next_trace_id();
        {
            let _scope = trace_scope(t1);
            assert_eq!(current_trace(), t1);
            {
                // Nested request_scope must defer to the outer id.
                let _inner = request_scope();
                assert_eq!(current_trace(), t1);
            }
            let _g = span("outer_work");
            marker("hit");
        }
        assert_eq!(current_trace(), 0, "scope must restore on drop");

        // A fresh request boundary mints its own id.
        let minted = {
            let _scope = request_scope();
            let id = current_trace();
            assert_ne!(id, 0);
            let _g = span("request");
            id
        };
        assert_ne!(minted, t1);

        // Cross-thread explicit recording carries the chosen trace id.
        let start = Instant::now();
        std::thread::spawn(move || {
            record_span("worker_leg", t1, start, Duration::from_micros(7));
        })
        .join()
        .unwrap();

        let records = export_records();
        let names: Vec<_> = records.iter().map(|r| (r.name, r.trace)).collect();
        assert!(names.contains(&("outer_work", t1)));
        assert!(names.contains(&("hit", t1)));
        assert!(names.contains(&("request", minted)));
        assert!(names.contains(&("worker_leg", t1)));
        // Seqs are unique and ordered.
        for w in records.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        // The worker thread got a distinct tag.
        let worker = records.iter().find(|r| r.name == "worker_leg").unwrap();
        let local = records.iter().find(|r| r.name == "outer_work").unwrap();
        assert_ne!(worker.thread, local.thread);

        // JSON line shape.
        let line = worker.to_json_line();
        assert!(line.contains("\"name\":\"worker_leg\""));
        assert!(line.contains(&format!("\"trace\":{t1}")));
        assert!(line.contains("\"dur_us\":7"));

        // Flush appends only new records.
        let dir = std::env::temp_dir().join(format!("nvc-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        set_trace_output(&path);
        flush_trace();
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.lines().count() >= 4);
        marker("late");
        flush_trace();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(second.lines().count(), first.lines().count() + 1);
        assert!(second.contains("\"name\":\"late\""));

        disable_tracing();
        {
            let _g = span("after_disable");
        }
        assert!(!export_records().iter().any(|r| r.name == "after_disable"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
