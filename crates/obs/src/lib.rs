//! `nvc-obs` — the observability substrate every other crate leans on.
//!
//! Zero dependencies by design: the stack runs offline, and instrumentation
//! that drags a dependency tree behind it ends up compiled out instead of
//! turned on. Four small pieces, each usable alone:
//!
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s, and log₂-bucketed
//!   [`LatencyHistogram`]s behind a [`MetricsRegistry`], with Prometheus
//!   text exposition and a structured snapshot the serve/hub JSON
//!   renderers consume. The histogram interpolates within buckets, so
//!   quantiles are tighter than the power-of-2 upper bound;
//! * [`trace`] — per-request trace ids and scoped spans recorded into a
//!   fixed-size lock-free ring buffer. Disabled (the default) a span
//!   costs one relaxed atomic load and zero allocations; enabled via
//!   `NVC_TRACE=path` or [`trace::enable_tracing`], records export as
//!   JSON lines;
//! * [`ops`] — aggregate per-kernel timers (matmul family, segment ops,
//!   gather): a relaxed-atomic counter/timer pair per op, gated by
//!   `NVC_OPS=1` or [`ops::set_ops_enabled`], free when off;
//! * [`journal`] — an append-only JSONL sink for training telemetry
//!   (one record per PPO iteration).
//!
//! # Threading model
//!
//! Everything here is safe to hammer from any thread. Counters, gauges,
//! histograms, and op timers are plain relaxed atomics. The trace ring
//! uses a seqlock per slot: writers never block, readers detect and skip
//! torn slots. The only mutexes are in the registry's name table (touched
//! at registration, not on the hot path) and the journal (coarse, low
//! frequency).

pub mod journal;
pub mod metrics;
pub mod ops;
pub mod trace;

pub use journal::{json_escape, Journal};
pub use metrics::{
    Counter, Gauge, HistogramSnapshot, LatencyHistogram, MetricsRegistry, RegistrySnapshot,
};
pub use ops::{
    ops_enabled, ops_snapshot, reset_ops, set_ops_enabled, time_op, Op, OpStat, OpTimer,
};
pub use trace::{
    current_trace, disable_tracing, enable_tracing, export_records, flush_trace, init_from_env,
    marker, next_trace_id, record_span, request_scope, set_trace_output, span, trace_scope,
    tracing_enabled, SpanGuard, TraceRecord, TraceScope,
};
