//! Append-only JSONL journals: one line per record, flushed as written,
//! safe to share between threads. The PPO trainer writes one record per
//! training iteration; figure regeneration and the future online-
//! learning loop replay them.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A line-oriented journal over any `Write` sink.
pub struct Journal {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal").finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates (truncating) a journal file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        let file = File::create(path)?;
        Ok(Journal::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Opens a journal at `path` in append mode, creating it if missing.
    /// Existing lines survive — this is the constructor for corpora that
    /// must accumulate across process restarts (the hub's online-learning
    /// journal); per-run telemetry keeps [`Journal::create`]'s truncate
    /// semantics.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Wraps an arbitrary sink (tests use `Vec<u8>` behind a pipe).
    pub fn from_writer(sink: Box<dyn Write + Send>) -> Journal {
        Journal {
            sink: Mutex::new(sink),
        }
    }

    /// Appends `line` plus a newline and flushes. Errors are swallowed:
    /// telemetry must never take training down.
    pub fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A sink that appends into a shared buffer.
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_append_in_order_across_threads() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let j = Arc::new(Journal::from_writer(Box::new(Shared(Arc::clone(&buf)))));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for k in 0..25 {
                        j.write_line(&format!("{{\"t\":{i},\"k\":{k}}}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        // Every line is intact JSON — no interleaving inside a line.
        for l in lines {
            assert!(l.starts_with("{\"t\":") && l.ends_with('}'), "torn: {l}");
        }
    }

    #[test]
    fn journal_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("nvc-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.jsonl");
        let j = Journal::create(&path).unwrap();
        j.write_line("{\"iter\":0}");
        j.write_line("{\"iter\":1}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"iter\":0}\n{\"iter\":1}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_mode_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!("nvc-journal-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("learn.jsonl");
        {
            let j = Journal::append(&path).unwrap();
            j.write_line("{\"report\":0}");
        }
        // A second open (the restarted process) must keep the first
        // run's lines and extend them.
        {
            let j = Journal::append(&path).unwrap();
            j.write_line("{\"report\":1}");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"report\":0}\n{\"report\":1}\n");
        // `create` on the same path still truncates.
        let j = Journal::create(&path).unwrap();
        j.write_line("{\"fresh\":true}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"fresh\":true}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }
}
