//! The "free when off" contract, enforced by a counting allocator: with
//! tracing disabled, spans, request scopes, markers, and op timers must
//! allocate *nothing* on the hot path.
//!
//! This lives in its own integration-test binary so the global
//! allocator and the never-enable-tracing invariant hold for the whole
//! process (the CI leg that sets `NVC_TRACE` doesn't reach here:
//! nothing in this binary calls `init_from_env`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_observability_allocates_nothing() {
    assert!(!nvc_obs::tracing_enabled());
    // Pin the ops flag so the one-time NVC_OPS env consultation (which
    // may allocate) happens outside the measured window.
    nvc_obs::set_ops_enabled(false);
    // Warm the thread-local path once, outside the window, too.
    {
        let _g = nvc_obs::span("warmup");
        let _s = nvc_obs::request_scope();
        let _t = nvc_obs::time_op(nvc_obs::Op::MatMul);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _scope = nvc_obs::request_scope();
        let _request = nvc_obs::span("request");
        nvc_obs::marker("cache_hit");
        let _mm = nvc_obs::time_op(nvc_obs::Op::MatMul);
        let _ga = nvc_obs::time_op(nvc_obs::Op::Gather);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing/ops must not allocate on the hot path"
    );
    assert_eq!(nvc_obs::current_trace(), 0);
}
