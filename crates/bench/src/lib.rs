//! Shared printing helpers for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one of the paper's figures (see
//! `DESIGN.md` for the experiment index) and prints the series the paper
//! plots. Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p nv-bench --bin fig7_benchmarks
//! ```

use neurovectorizer::experiments::ComparisonData;

/// Prints a comparison table (benchmarks × methods) with a geomean row.
pub fn print_comparison(title: &str, data: &ComparisonData) {
    println!("\n== {title} ==");
    print!("{:<28}", "benchmark");
    for m in &data.methods {
        print!("{m:>14}");
    }
    println!();
    for (bi, b) in data.benchmarks.iter().enumerate() {
        print!("{b:<28}");
        for mi in 0..data.methods.len() {
            print!("{:>14.3}", data.speedups[mi][bi]);
        }
        println!();
    }
    print!("{:<28}", "geomean");
    for m in &data.methods {
        print!("{:>14.3}", data.average(m));
    }
    println!();
}

/// Prints learning-curve series (Figures 5–6 style).
pub fn print_series(title: &str, series: &[neurovectorizer::experiments::SweepSeries]) {
    println!("\n== {title} ==");
    for s in series {
        println!("-- {}", s.label);
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "steps", "reward_mean", "total_loss", "entropy"
        );
        for p in &s.points {
            println!(
                "{:>10} {:>14.4} {:>14.4} {:>12.4}",
                p.steps, p.reward_mean, p.loss, p.entropy
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_comparison_does_not_panic() {
        let d = ComparisonData {
            benchmarks: vec!["k".into()],
            methods: vec!["baseline".into(), "rl".into()],
            speedups: vec![vec![1.0], vec![2.5]],
        };
        print_comparison("test", &d);
    }
}
