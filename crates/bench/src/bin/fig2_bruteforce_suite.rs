//! Figure 2: brute-force optimum vs the baseline cost model over the
//! vectorizer test suite (§2.1).

use neurovectorizer::experiments::fig2_bruteforce_suite;
use nvc_machine::TargetConfig;

fn main() {
    let entries = fig2_bruteforce_suite(&TargetConfig::i7_8559u());
    println!("== Figure 2: brute-force best / baseline, vectorizer test suite ==");
    println!("{:<30}{:>12}", "test", "speedup");
    let mut max: f64 = 0.0;
    let mut sum = 0.0;
    for e in &entries {
        println!("{:<30}{:>12.3}", e.name, e.best_over_baseline);
        max = max.max(e.best_over_baseline);
        sum += e.best_over_baseline.ln();
    }
    println!(
        "\ngeomean {:.3}x, max {:.3}x   (paper: every test >= 1.0x, up to ~1.5x)",
        (sum / entries.len() as f64).exp(),
        max
    );
}
