//! Figure 7: the 12 held-out benchmarks under baseline, random search,
//! Polly, decision tree, NNS, RL and brute force (§4).

use neurovectorizer::experiments::{fig7_comparison, figure7_benchmarks, train_framework, Scale};
use nv_bench::print_comparison;

fn main() {
    let scale = Scale::bench();
    eprintln!(
        "training PPO ({} kernels, {} iterations)…",
        scale.train_kernels, scale.iterations
    );
    let (nv, env, stats) = train_framework(scale);
    if let Some(last) = stats.last() {
        eprintln!(
            "final reward mean on the training pool: {:.3}",
            last.reward_mean
        );
    }
    let data = fig7_comparison(&nv, &env, &figure7_benchmarks());
    print_comparison(
        "Figure 7: 12 benchmarks x 7 methods (speedup over baseline)",
        &data,
    );
    println!("\npaper: RL 2.67x, NNS 2.65x, DT 2.47x, Polly 1.17x, random < 1x,");
    println!("RL within 3% of brute force.");
}
