//! Figure 5: reward mean and training loss for different learning rates,
//! FCNN architectures and batch sizes (§4).
//!
//! Batch sizes are the paper's {500, 1000, 4000} divided by 8 to fit the
//! reduced-scale harness; see EXPERIMENTS.md for the scaling note.

use neurovectorizer::experiments::{fig5_sweep, Scale};
use nv_bench::print_series;

fn main() {
    let series = fig5_sweep(Scale::bench());
    print_series(
        "Figure 5: hyperparameter sweep (lr / architecture / batch)",
        &series,
    );
    println!("\npaper: lr=5e-5 reaches the maximum reward fastest; lr=5e-3 never");
    println!("reaches it; architectures differ little; smaller batches converge");
    println!("with fewer samples.");
}
