//! The abstract's headline numbers: average speedup range and distance
//! from brute force.

use neurovectorizer::experiments::{
    fig7_comparison, fig8_polybench, fig9_mibench, figure7_benchmarks, headline_summary,
    train_framework, Scale,
};

fn main() {
    let (nv, env, _) = train_framework(Scale::bench());
    let f7 = fig7_comparison(&nv, &env, &figure7_benchmarks());
    let f8 = fig8_polybench(&nv);
    let f9 = fig9_mibench(&nv);
    let h = headline_summary(&f7, &f8, &f9);
    println!("== Headline numbers ==");
    println!(
        "RL average speedup (Figure 7 set): {:.2}x   (paper: 2.67x)",
        h.rl_average
    );
    println!(
        "brute-force average:               {:.2}x",
        h.brute_force_average
    );
    println!(
        "RL / brute force:                  {:.1}%   (paper: 97%)",
        h.rl_vs_brute_force * 100.0
    );
    println!(
        "per-suite average range:           {:.2}x - {:.2}x   (paper: 1.29x - 4.73x)",
        h.range.0, h.range.1
    );
}
