//! Figure 9: MiBench-style programs under baseline, Polly and deep RL
//! (§4.1).

use neurovectorizer::experiments::{fig9_mibench, train_framework, Scale};
use nv_bench::print_comparison;

fn main() {
    let (nv, _env, _) = train_framework(Scale::bench());
    let data = fig9_mibench(&nv);
    print_comparison("Figure 9: MiBench (speedup over baseline)", &data);
    println!("\npaper: RL >= Polly >= baseline on every program; average 1.1x");
    println!("because loops are a minor fraction of these programs.");
}
