//! §3.4 extension: reward shaping with compile time. "One can allow a
//! long compilation time but penalize for it" — this sweep shows the
//! trade-off curve between execution reward and compile cost.

use neurovectorizer::experiments::{ext_reward_shaping, Scale};

fn main() {
    let mut scale = Scale::bench();
    scale.iterations = 15; // three full trainings below
    let rows = ext_reward_shaping(scale, &[0.0, 0.25, 1.0]);
    println!("== Extension (§3.4): compile-time-aware reward ==");
    println!(
        "{:>8} {:>14} {:>18}",
        "weight", "exec_reward", "compile/baseline"
    );
    for r in &rows {
        println!(
            "{:>8.2} {:>14.4} {:>18.3}",
            r.weight, r.exec_reward, r.compile_ratio
        );
    }
    println!("\nhigher weights steer the agent toward cheaper-to-compile factors");
    println!("at a small execution-reward cost.");
}
