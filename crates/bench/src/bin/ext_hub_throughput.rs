//! Extension experiment: hub warm-restart throughput over loopback TCP.
//!
//! The hub's persistent decision cache exists so a restarted daemon does
//! not re-pay every embedding + policy forward it already did in its
//! previous life. This bench measures that, end to end through the real
//! TCP transport with the paper-sized model (340-dim code vectors,
//! 64×64 policy):
//!
//! 1. **cold** — a fresh hub, empty cache: every distinct loop shape
//!    pays the full model forward;
//! 2. **warm restart** — the cold hub is shut down (persisting its
//!    cache, versioned by checkpoint hash), a new hub process-equivalent
//!    restores it, and the same repeated-shape workload runs again:
//!    every loop is a disk-restored cache hit.
//!
//! Acceptance: warm-restart req/s ≥ 3× cold req/s, the restore really
//! happened (`entries_restored > 0`, zero model batches), and a restart
//! under a *different* checkpoint invalidates instead of serving stale
//! decisions. Results land in `BENCH_hub.json`.
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_hub_throughput
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use neurovectorizer::{Hub, HubConfig, ModelSpec, NeuroVectorizer, NvConfig, ServeConfig};
use nvc_datasets::generator;
use nvc_hub::server::{serve_tcp, HubHandle};
use nvc_serve::json::obj;
use nvc_serve::Json;

const ACCEPTANCE_RATIO: f64 = 3.0;
const CLIENTS: usize = 4;
const PASSES: usize = 3;

fn start_hub(cache_path: &str, nv: NeuroVectorizer) -> HubHandle {
    let hub = Hub::new(
        HubConfig::default()
            .with_listen("127.0.0.1:0")
            .with_cache_path(cache_path),
        ServeConfig::default(),
    );
    let hash = nv.checkpoint_hash();
    hub.register(ModelSpec {
        name: "prod".to_string(),
        weight: 1,
        checkpoint_hash: hash,
        model: Arc::new(nv),
    })
    .expect("register");
    hub.restore_cache().expect("restore cache");
    serve_tcp(Arc::new(hub)).expect("bind loopback")
}

fn model(seed: u64) -> NeuroVectorizer {
    NeuroVectorizer::new(NvConfig::paper().with_seed(seed))
}

/// Drives every source `passes` times from `clients` persistent TCP
/// connections; returns req/s.
fn drive(addr: SocketAddr, sources: &[String], clients: usize, passes: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                // Nagle + delayed ACK would cap the request rate near
                // 25/s per connection regardless of server speed.
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream);
                for _ in 0..passes {
                    for src in sources {
                        let mut line = obj(vec![("source", Json::from(src.as_str()))]).render();
                        line.push('\n');
                        let s = reader.get_mut();
                        s.write_all(line.as_bytes()).unwrap();
                        s.flush().unwrap();
                        let mut response = String::new();
                        reader.read_line(&mut response).expect("response");
                        let v = Json::parse(response.trim()).expect("json");
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "request failed: {response}"
                        );
                    }
                }
            });
        }
    });
    (clients * passes * sources.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let pool = generator::generate(11, 24);
    let sources: Vec<String> = pool.iter().map(|k| k.source.clone()).collect();
    let cache_path = std::env::temp_dir()
        .join(format!("nvc-hub-bench-{}.nvc", std::process::id()))
        .to_string_lossy()
        .to_string();
    let _ = std::fs::remove_file(&cache_path);
    println!(
        "== ext: hub throughput over loopback TCP ({} kernels, {CLIENTS} clients, paper-size model) ==\n",
        sources.len()
    );
    println!(
        "{:<38} {:>12} {:>10} {:>12}",
        "configuration", "req/s", "hits", "restored"
    );

    // 1. Cold: fresh hub, empty cache, first-touch workload (one pass —
    //    exactly what a freshly restarted hub without persistence pays);
    //    shut down to persist.
    let (cold, cold_entries) = {
        let handle = start_hub(&cache_path, model(3));
        let rps = drive(handle.addr(), &sources, CLIENTS, 1);
        let stats = handle
            .hub()
            .registry()
            .get("prod")
            .unwrap()
            .handle
            .cache_stats();
        println!(
            "{:<38} {:>12.1} {:>10} {:>12}",
            "cold (empty cache)", rps, stats.hits, "-"
        );
        handle.shutdown();
        (rps, stats.len())
    };

    // 2. Warm restart: same checkpoint, cache restored from disk.
    let (warm, restored, warm_batches) = {
        let handle = start_hub(&cache_path, model(3));
        let rps = drive(handle.addr(), &sources, CLIENTS, PASSES);
        let entry = handle.hub().registry().get("prod").unwrap();
        let m = entry.handle.metrics();
        println!(
            "{:<38} {:>12.1} {:>10} {:>12}",
            "warm restart (restored cache)",
            rps,
            entry.handle.cache_stats().hits,
            m.entries_restored
        );
        handle.shutdown();
        (rps, m.entries_restored, m.batches)
    };

    // 3. Version check: a different checkpoint must invalidate, not
    //    serve stale decisions (informational, but asserted).
    let invalidated = {
        let handle = start_hub(&cache_path, model(99));
        drive(
            handle.addr(),
            &sources[..4.min(sources.len())].to_vec(),
            1,
            1,
        );
        let m = handle
            .hub()
            .registry()
            .get("prod")
            .unwrap()
            .handle
            .metrics();
        println!(
            "{:<38} {:>12} {:>10} {:>12}",
            "changed checkpoint (invalidated)", "-", "-", m.entries_invalidated_by_version
        );
        handle.shutdown();
        m.entries_invalidated_by_version
    };
    let _ = std::fs::remove_file(&cache_path);

    let ratio = warm / cold;
    println!("\nwarm-restart/cold speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");

    let report = obj(vec![
        ("bench", Json::from("hub_throughput")),
        ("kernels", Json::from(sources.len())),
        ("clients", Json::from(CLIENTS)),
        ("passes", Json::from(PASSES)),
        ("cold_rps", Json::from(cold)),
        ("warm_restart_rps", Json::from(warm)),
        ("ratio", Json::from(ratio)),
        ("acceptance_ratio", Json::from(ACCEPTANCE_RATIO)),
        ("cold_cache_entries", Json::from(cold_entries)),
        ("entries_restored", Json::from(restored)),
        ("warm_model_batches", Json::from(warm_batches)),
        ("entries_invalidated_by_version", Json::from(invalidated)),
    ]);
    match std::fs::write("BENCH_hub.json", report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_hub.json"),
        Err(e) => eprintln!("could not write BENCH_hub.json: {e}"),
    }

    let mut ok = true;
    if restored == 0 {
        println!("FAIL: warm restart restored nothing");
        ok = false;
    }
    if warm_batches != 0 {
        println!("FAIL: warm restart ran {warm_batches} model batches (expected 0)");
        ok = false;
    }
    if invalidated == 0 {
        println!("FAIL: changed checkpoint invalidated nothing");
        ok = false;
    }
    if ratio < ACCEPTANCE_RATIO {
        println!("FAIL: warm-restart speedup below acceptance");
        ok = false;
    }
    if ok {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
