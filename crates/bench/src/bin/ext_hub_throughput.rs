//! Extension experiment: hub warm-restart throughput over loopback TCP.
//!
//! The hub's persistent decision cache exists so a restarted daemon does
//! not re-pay every embedding + policy forward it already did in its
//! previous life. This bench measures that, end to end through the real
//! TCP transport with the paper-sized model (340-dim code vectors,
//! 64×64 policy):
//!
//! 1. **cold** — a fresh hub, empty cache: every distinct loop shape
//!    pays the full model forward;
//! 2. **warm restart** — the cold hub is shut down (persisting its
//!    cache, versioned by checkpoint hash), a new hub process-equivalent
//!    restores it, and the same repeated-shape workload runs again:
//!    every loop is a disk-restored cache hit.
//!
//! Acceptance: warm-restart req/s ≥ 3× cold req/s, the restore really
//! happened (`entries_restored > 0`, zero model batches), and a restart
//! under a *different* checkpoint invalidates instead of serving stale
//! decisions. Results land in `BENCH_hub.json`.
//!
//! A concurrent-connections axis then scales idle connections through
//! 1/64/1024/8192 against the event transport, reporting active-mix
//! p50/p99 latency and the idle CPU cost at each level — the C10K
//! claim: established-but-quiet sockets must be effectively free.
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_hub_throughput
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use neurovectorizer::{Hub, HubConfig, ModelSpec, NeuroVectorizer, NvConfig, ServeConfig};
use nvc_datasets::generator;
use nvc_hub::server::{serve_tcp, HubHandle};
use nvc_serve::json::obj;
use nvc_serve::Json;

const ACCEPTANCE_RATIO: f64 = 3.0;
const CLIENTS: usize = 4;
const PASSES: usize = 3;

/// Concurrent-connections axis: idle connections held open while a
/// small active mix measures request latency. 8192 needs ~16k fds in
/// this one process (client + server ends); the CI box allows 20k.
const CONN_LEVELS: [usize; 4] = [1, 64, 1024, 8192];
const ACTIVE_CLIENTS: usize = 4;
const ACTIVE_REQS: usize = 200;
/// Idle-CPU acceptance at the top level: the selector must make idle
/// connections effectively free (no per-connection timers). Generous
/// against CI noise; the measured number is what lands in the report.
const IDLE_CPU_MAX_PCT: f64 = 5.0;

fn start_hub(cache_path: &str, nv: NeuroVectorizer) -> HubHandle {
    let hub = Hub::new(
        HubConfig::default()
            .with_listen("127.0.0.1:0")
            .with_cache_path(cache_path),
        ServeConfig::default(),
    );
    let hash = nv.checkpoint_hash();
    hub.register(ModelSpec {
        name: "prod".to_string(),
        weight: 1,
        checkpoint_hash: hash,
        model: Arc::new(nv),
    })
    .expect("register");
    hub.restore_cache().expect("restore cache");
    serve_tcp(Arc::new(hub)).expect("bind loopback")
}

fn model(seed: u64) -> NeuroVectorizer {
    NeuroVectorizer::new(NvConfig::paper().with_seed(seed))
}

/// Drives every source `passes` times from `clients` persistent TCP
/// connections; returns req/s.
fn drive(addr: SocketAddr, sources: &[String], clients: usize, passes: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                // Nagle + delayed ACK would cap the request rate near
                // 25/s per connection regardless of server speed.
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream);
                for _ in 0..passes {
                    for src in sources {
                        let mut line = obj(vec![("source", Json::from(src.as_str()))]).render();
                        line.push('\n');
                        let s = reader.get_mut();
                        s.write_all(line.as_bytes()).unwrap();
                        s.flush().unwrap();
                        let mut response = String::new();
                        reader.read_line(&mut response).expect("response");
                        let v = Json::parse(response.trim()).expect("json");
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "request failed: {response}"
                        );
                    }
                }
            });
        }
    });
    (clients * passes * sources.len()) as f64 / t0.elapsed().as_secs_f64()
}

/// Process CPU seconds (user + system) from `/proc/self/stat`,
/// assuming the ubiquitous 100 Hz `_SC_CLK_TCK`.
fn proc_cpu_seconds() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14/15 (utime/stime) counted after the parenthesised comm,
    // which may itself contain spaces.
    let after = stat.rsplit(')').next().unwrap_or("");
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: f64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let stime: f64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    (utime + stime) / 100.0
}

/// One latency probe: `ACTIVE_CLIENTS` connections each running
/// `ACTIVE_REQS` sequential ping round-trips; returns all latencies in
/// microseconds, sorted.
fn probe_latencies(addr: SocketAddr) -> Vec<f64> {
    let all = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..ACTIVE_CLIENTS {
            scope.spawn(|| {
                let stream = TcpStream::connect(addr).expect("connect active");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream);
                let mut lats = Vec::with_capacity(ACTIVE_REQS);
                for _ in 0..ACTIVE_REQS {
                    let t = Instant::now();
                    let s = reader.get_mut();
                    s.write_all(b"{\"op\":\"ping\"}\n").unwrap();
                    s.flush().unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("ping response");
                    lats.push(t.elapsed().as_secs_f64() * 1e6);
                    assert!(response.contains("pong"), "bad ping reply: {response}");
                }
                all.lock().unwrap().extend(lats);
            });
        }
    });
    let mut lats = all.into_inner().unwrap();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lats
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> ExitCode {
    let pool = generator::generate(11, 24);
    let sources: Vec<String> = pool.iter().map(|k| k.source.clone()).collect();
    let cache_path = std::env::temp_dir()
        .join(format!("nvc-hub-bench-{}.nvc", std::process::id()))
        .to_string_lossy()
        .to_string();
    let _ = std::fs::remove_file(&cache_path);
    println!(
        "== ext: hub throughput over loopback TCP ({} kernels, {CLIENTS} clients, paper-size model) ==\n",
        sources.len()
    );
    println!(
        "{:<38} {:>12} {:>10} {:>12}",
        "configuration", "req/s", "hits", "restored"
    );

    // 1. Cold: fresh hub, empty cache, first-touch workload (one pass —
    //    exactly what a freshly restarted hub without persistence pays);
    //    shut down to persist.
    let (cold, cold_entries) = {
        let handle = start_hub(&cache_path, model(3));
        let rps = drive(handle.addr(), &sources, CLIENTS, 1);
        let stats = handle
            .hub()
            .registry()
            .get("prod")
            .unwrap()
            .handle
            .cache_stats();
        println!(
            "{:<38} {:>12.1} {:>10} {:>12}",
            "cold (empty cache)", rps, stats.hits, "-"
        );
        handle.shutdown();
        (rps, stats.len())
    };

    // 2. Warm restart: same checkpoint, cache restored from disk.
    let (warm, restored, warm_batches) = {
        let handle = start_hub(&cache_path, model(3));
        let rps = drive(handle.addr(), &sources, CLIENTS, PASSES);
        let entry = handle.hub().registry().get("prod").unwrap();
        let m = entry.handle.metrics();
        println!(
            "{:<38} {:>12.1} {:>10} {:>12}",
            "warm restart (restored cache)",
            rps,
            entry.handle.cache_stats().hits,
            m.entries_restored
        );
        handle.shutdown();
        (rps, m.entries_restored, m.batches)
    };

    // 3. Version check: a different checkpoint must invalidate, not
    //    serve stale decisions (informational, but asserted).
    let invalidated = {
        let handle = start_hub(&cache_path, model(99));
        drive(
            handle.addr(),
            &sources[..4.min(sources.len())].to_vec(),
            1,
            1,
        );
        let m = handle
            .hub()
            .registry()
            .get("prod")
            .unwrap()
            .handle
            .metrics();
        println!(
            "{:<38} {:>12} {:>10} {:>12}",
            "changed checkpoint (invalidated)", "-", "-", m.entries_invalidated_by_version
        );
        handle.shutdown();
        m.entries_invalidated_by_version
    };
    let _ = std::fs::remove_file(&cache_path);

    // 4. Concurrent-connections axis (event transport): hold N idle
    //    connections, measure their CPU cost over a quiet window, then
    //    run a small active mix and report its latency percentiles.
    println!(
        "\n{:<14} {:>12} {:>12} {:>14}",
        "connections", "p50 us", "p99 us", "idle cpu %"
    );
    let mut axis: Vec<Json> = Vec::new();
    let mut idle_cpu_top = 0.0f64;
    {
        let handle = start_hub(&cache_path, model(3));
        let addr = handle.addr();
        let mut idle: Vec<TcpStream> = Vec::new();
        for &level in &CONN_LEVELS {
            while idle.len() < level {
                let s = TcpStream::connect(addr).expect("connect idle");
                idle.push(s);
            }
            // Give the selector a beat to register the new arrivals,
            // then measure process CPU across a quiet second.
            std::thread::sleep(std::time::Duration::from_millis(200));
            let cpu0 = proc_cpu_seconds();
            let t0 = Instant::now();
            std::thread::sleep(std::time::Duration::from_secs(1));
            let idle_cpu_pct = (proc_cpu_seconds() - cpu0) / t0.elapsed().as_secs_f64() * 100.0;
            let lats = probe_latencies(addr);
            let (p50, p99) = (percentile(&lats, 0.50), percentile(&lats, 0.99));
            println!("{level:<14} {p50:>12.1} {p99:>12.1} {idle_cpu_pct:>14.2}");
            if level == *CONN_LEVELS.last().unwrap() {
                idle_cpu_top = idle_cpu_pct;
            }
            axis.push(obj(vec![
                ("connections", Json::from(level)),
                ("p50_us", Json::from(p50)),
                ("p99_us", Json::from(p99)),
                ("idle_cpu_pct", Json::from(idle_cpu_pct)),
            ]));
        }
        drop(idle);
        handle.shutdown();
    }
    let _ = std::fs::remove_file(&cache_path);

    let ratio = warm / cold;
    println!("\nwarm-restart/cold speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");

    let report = obj(vec![
        ("bench", Json::from("hub_throughput")),
        ("kernels", Json::from(sources.len())),
        ("clients", Json::from(CLIENTS)),
        ("passes", Json::from(PASSES)),
        ("cold_rps", Json::from(cold)),
        ("warm_restart_rps", Json::from(warm)),
        ("ratio", Json::from(ratio)),
        ("acceptance_ratio", Json::from(ACCEPTANCE_RATIO)),
        ("cold_cache_entries", Json::from(cold_entries)),
        ("entries_restored", Json::from(restored)),
        ("warm_model_batches", Json::from(warm_batches)),
        ("entries_invalidated_by_version", Json::from(invalidated)),
        ("connections_axis", Json::Arr(axis)),
        ("idle_cpu_max_pct", Json::from(IDLE_CPU_MAX_PCT)),
    ]);
    match std::fs::write("BENCH_hub.json", report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_hub.json"),
        Err(e) => eprintln!("could not write BENCH_hub.json: {e}"),
    }

    let mut ok = true;
    if restored == 0 {
        println!("FAIL: warm restart restored nothing");
        ok = false;
    }
    if warm_batches != 0 {
        println!("FAIL: warm restart ran {warm_batches} model batches (expected 0)");
        ok = false;
    }
    if invalidated == 0 {
        println!("FAIL: changed checkpoint invalidated nothing");
        ok = false;
    }
    if ratio < ACCEPTANCE_RATIO {
        println!("FAIL: warm-restart speedup below acceptance");
        ok = false;
    }
    if idle_cpu_top > IDLE_CPU_MAX_PCT {
        println!(
            "FAIL: {} idle connections cost {idle_cpu_top:.2}% CPU (max {IDLE_CPU_MAX_PCT}%)",
            CONN_LEVELS.last().unwrap()
        );
        ok = false;
    }
    if ok {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
