//! Extension experiment: fleet warm-join throughput over loopback TCP.
//!
//! When a node joins a serving fleet it can either start cold — paying
//! a full embedding + policy forward for every distinct loop shape the
//! fleet has already decided — or warm-join: pull the decision-cache
//! image from a live peer (the hub `cache_export` verb) and serve those
//! decisions as cache hits from request one. This bench measures that
//! difference end to end through the real TCP transport with the
//! paper-sized model (340-dim code vectors, 64×64 policy):
//!
//! 1. **warm peer** — a node that has already served the workload;
//! 2. **cold join** — a fresh node with the same checkpoint and an
//!    empty cache answers the workload from scratch;
//! 3. **warm join** — another fresh node first runs
//!    `warm_from_peers` against the warm peer, then answers the same
//!    workload entirely from the transferred cache.
//!
//! Acceptance: warm-join req/s ≥ 2× cold-join req/s, the transfer
//! really happened (entries ≥ workload size), and the warm-joined node
//! ran **zero** model batches. A fleet-routing section then drives the
//! same workload through `FleetClient` (registry resolve → weighted
//! pick → failover) across both live nodes and asserts zero
//! wrong-version decisions. Results land in `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_fleet_throughput
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use neurovectorizer::{
    AnnounceConfig, ContentStore, FleetClient, FleetConfig, Hub, HubConfig, ModelSpec,
    NeuroVectorizer, NvConfig, RegistryService, ServeConfig,
};
use nvc_datasets::generator;
use nvc_fleet::serve_registry;
use nvc_hub::server::{serve_tcp, HubHandle};
use nvc_hub::spawn_announcer;
use nvc_serve::json::obj;
use nvc_serve::Json;

const ACCEPTANCE_RATIO: f64 = 2.0;
const CLIENTS: usize = 4;
const FLEET_PASSES: usize = 3;

fn model(seed: u64) -> NeuroVectorizer {
    NeuroVectorizer::new(NvConfig::paper().with_seed(seed))
}

fn start_node(nv: NeuroVectorizer) -> HubHandle {
    let hub = Hub::new(
        HubConfig::default().with_listen("127.0.0.1:0"),
        ServeConfig::default(),
    )
    .with_shared_store(Arc::new(ContentStore::default()));
    let hash = nv.checkpoint_hash();
    hub.register(ModelSpec {
        name: "prod".to_string(),
        weight: 1,
        checkpoint_hash: hash,
        model: Arc::new(nv),
    })
    .expect("register");
    serve_tcp(Arc::new(hub)).expect("bind loopback")
}

/// Drives every source `passes` times from `clients` persistent TCP
/// connections straight at one hub; returns req/s.
fn drive(addr: SocketAddr, sources: &[String], clients: usize, passes: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream);
                for _ in 0..passes {
                    for src in sources {
                        let mut line = obj(vec![("source", Json::from(src.as_str()))]).render();
                        line.push('\n');
                        let s = reader.get_mut();
                        s.write_all(line.as_bytes()).unwrap();
                        s.flush().unwrap();
                        let mut response = String::new();
                        reader.read_line(&mut response).expect("response");
                        let v = Json::parse(response.trim()).expect("json");
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "request failed: {response}"
                        );
                    }
                }
            });
        }
    });
    (clients * passes * sources.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn node_metrics(handle: &HubHandle) -> (u64, u64) {
    let entry = handle.hub().registry().get("prod").unwrap();
    let m = entry.handle.metrics();
    (m.batches, entry.handle.cache_stats().hits)
}

fn main() -> ExitCode {
    let pool = generator::generate(17, 24);
    let sources: Vec<String> = pool.iter().map(|k| k.source.clone()).collect();
    println!(
        "== ext: fleet warm-join throughput over loopback TCP ({} kernels, {CLIENTS} clients, paper-size model) ==\n",
        sources.len()
    );
    println!(
        "{:<38} {:>12} {:>10} {:>10}",
        "configuration", "req/s", "batches", "hits"
    );

    // Warm peer: serve the whole workload once so its cache holds every
    // decision the fleet knows. Distinct kernels can share a loop shape
    // (and thus a cache key), so the peer's entry count — not the kernel
    // count — is what a complete transfer must carry.
    let warm_peer = start_node(model(3));
    drive(warm_peer.addr(), &sources, CLIENTS, 1);
    let peer_entries = {
        let entry = warm_peer.hub().registry().get("prod").unwrap();
        entry.handle.cache_stats().len()
    };

    // Cold join: same checkpoint, empty cache — pays the model.
    let (cold_rps, cold_batches) = {
        let node = start_node(model(3));
        let rps = drive(node.addr(), &sources, CLIENTS, 1);
        let (batches, hits) = node_metrics(&node);
        println!(
            "{:<38} {:>12.1} {:>10} {:>10}",
            "cold join (empty cache)", rps, batches, hits
        );
        node.shutdown();
        (rps, batches)
    };

    // Warm join: gossip-transfer the peer's cache image first, then the
    // identical workload must be hits only.
    let warm_node = start_node(model(3));
    let transferred = warm_node
        .hub()
        .warm_from_peers(&[warm_peer.addr().to_string()])
        .expect("warm join");
    let (warm_rps, warm_batches) = {
        let rps = drive(warm_node.addr(), &sources, CLIENTS, 1);
        let (batches, hits) = node_metrics(&warm_node);
        println!(
            "{:<38} {:>12.1} {:>10} {:>10}",
            format!("warm join ({transferred} entries)"),
            rps,
            batches,
            hits
        );
        (rps, batches)
    };

    // Fleet routing: a registry over both live nodes, driven through
    // FleetClient (resolve → weighted pick → verify hash).
    let registry =
        serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").expect("bind registry");
    let reg_addr = registry.addr().to_string();
    let ann_a = spawn_announcer(
        Arc::clone(warm_peer.hub()),
        AnnounceConfig::new(&reg_addr, "warm-peer", warm_peer.addr().to_string()),
    );
    let ann_b = spawn_announcer(
        Arc::clone(warm_node.hub()),
        AnnounceConfig::new(&reg_addr, "warm-join", warm_node.addr().to_string()),
    );
    let (fleet_rps, fleet_requests, fleet_mismatches) = {
        // Wait until both nodes are resolvable.
        let probe = FleetClient::new(FleetConfig::new(&reg_addr).with_model("prod"));
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            probe.invalidate_resolution();
            if probe.current_nodes().map(|n| n.len()).unwrap_or(0) >= 2 {
                break;
            }
            assert!(Instant::now() < deadline, "nodes never announced");
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        let t0 = Instant::now();
        let stats: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let reg = reg_addr.clone();
                    let sources = &sources;
                    scope.spawn(move || {
                        let client = FleetClient::new(FleetConfig::new(&reg).with_model("prod"));
                        for _ in 0..FLEET_PASSES {
                            for src in sources {
                                client.vectorize(src).expect("fleet vectorize");
                            }
                        }
                        client.stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let rps = (CLIENTS * FLEET_PASSES * sources.len()) as f64 / t0.elapsed().as_secs_f64();
        let requests: u64 = stats.iter().map(|s| s.requests).sum();
        let mismatches: u64 = stats.iter().map(|s| s.version_mismatches).sum();
        println!(
            "{:<38} {:>12.1} {:>10} {:>10}",
            "fleet-routed (2 nodes, registry)", rps, "-", "-"
        );
        (rps, requests, mismatches)
    };
    ann_a.stop();
    ann_b.stop();
    registry.shutdown();
    warm_node.shutdown();
    warm_peer.shutdown();

    let ratio = warm_rps / cold_rps;
    println!("\nwarm-join/cold-join speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");

    let report = obj(vec![
        ("bench", Json::from("fleet_throughput")),
        ("kernels", Json::from(sources.len())),
        ("clients", Json::from(CLIENTS)),
        ("cold_join_rps", Json::from(cold_rps)),
        ("warm_join_rps", Json::from(warm_rps)),
        ("ratio", Json::from(ratio)),
        ("acceptance_ratio", Json::from(ACCEPTANCE_RATIO)),
        ("transferred_entries", Json::from(transferred)),
        ("peer_cache_entries", Json::from(peer_entries)),
        ("cold_join_batches", Json::from(cold_batches)),
        ("warm_join_batches", Json::from(warm_batches)),
        ("fleet_routed_rps", Json::from(fleet_rps)),
        ("fleet_requests", Json::from(fleet_requests)),
        ("fleet_version_mismatches", Json::from(fleet_mismatches)),
        ("fleet_passes", Json::from(FLEET_PASSES)),
    ]);
    match std::fs::write("BENCH_fleet.json", report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_fleet.json"),
        Err(e) => eprintln!("could not write BENCH_fleet.json: {e}"),
    }

    let mut ok = true;
    if transferred < peer_entries || transferred == 0 {
        println!("FAIL: transfer carried {transferred} entries (peer held {peer_entries})");
        ok = false;
    }
    if warm_batches != 0 {
        println!("FAIL: warm join ran {warm_batches} model batches (expected 0)");
        ok = false;
    }
    if fleet_mismatches != 0 {
        println!("FAIL: fleet routing accepted {fleet_mismatches} wrong-version decisions");
        ok = false;
    }
    if ratio < ACCEPTANCE_RATIO {
        println!("FAIL: warm-join speedup below acceptance");
        ok = false;
    }
    if ok {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        println!("(fleet_rps {fleet_rps:.1}, requests {fleet_requests})");
        ExitCode::FAILURE
    }
}
