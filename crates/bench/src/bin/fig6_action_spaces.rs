//! Figure 6: discrete vs continuous action-space definitions (§4).

use neurovectorizer::experiments::{fig6_action_spaces, Scale};
use nv_bench::print_series;

fn main() {
    let series = fig6_action_spaces(Scale::bench());
    print_series("Figure 6: action-space definitions", &series);
    println!("\npaper: the discrete action space performs the best.");
}
