//! Figure 8: PolyBench under baseline, Polly, deep RL and RL+Polly
//! (§4.1).

use neurovectorizer::experiments::{fig8_polybench, train_framework, Scale};
use nv_bench::print_comparison;

fn main() {
    let (nv, _env, _) = train_framework(Scale::bench());
    let data = fig8_polybench(&nv);
    print_comparison("Figure 8: PolyBench (speedup over baseline)", &data);
    println!("\npaper: RL 2.08x baseline and 1.16x vs Polly; RL wins 3 of 6;");
    println!("Polly wins the large-trip-count kernels; RL+Polly reaches 2.92x.");
}
