//! Extension experiment: batched rollout collection throughput.
//!
//! NeuroVectorizer's training time is dominated by the embedding + policy
//! forward pass over loop observations, and the seed implementation paid
//! that cost per rollout sample: `PpoTrainer::collect` built a fresh
//! autodiff graph and ran a single-row forward for every one of the
//! `train_batch` episodes. The batched path embeds every *distinct*
//! context once, stacks the whole batch into one policy forward, and
//! samples actions row by row — with RNG consumption ordered so the
//! transitions are **bitwise-identical** to the per-sample path.
//!
//! This bench drives both paths with the paper-sized model (340-dim code
//! vectors, 64×64 policy) over a loop pool extracted from generated
//! kernels and reports rollouts/sec. Acceptance: batched ≥ 3× the
//! per-sample baseline at `train_batch = 64`, and the parity invariant
//! must hold. Results land in `BENCH_train.json`.
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_train_throughput
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nvc_datasets::generator;
use nvc_embed::{extract_loop_samples, EmbedConfig, PathSample};
use nvc_rl::{ActionDims, BanditEnv, PpoConfig, PpoTrainer};
use nvc_serve::json::obj;
use nvc_serve::Json;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const ACCEPTANCE_RATIO: f64 = 3.0;
const TRAIN_BATCH: usize = 64;
const POOL_SIZE: usize = 12;
const REPS: usize = 5;

/// A fixed loop pool with a cheap deterministic reward: the bench
/// measures collection cost, so the environment must be ~free.
struct PoolEnv {
    contexts: Vec<PathSample>,
}

impl BanditEnv for PoolEnv {
    fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    fn context(&self, idx: usize) -> &PathSample {
        &self.contexts[idx]
    }

    fn action_dims(&self) -> ActionDims {
        ActionDims { n_vf: 7, n_if: 5 }
    }

    fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64 {
        (idx as f64 * 0.31 + action.0 as f64 * 0.07 - action.1 as f64 * 0.05).sin()
    }
}

fn build_env() -> PoolEnv {
    let cfg = EmbedConfig::paper();
    let mut contexts = Vec::new();
    for kernel in generator::generate(11, 16) {
        for site in extract_loop_samples(&kernel.source, &cfg).expect("generated kernels parse") {
            if !site.sample.is_empty() {
                contexts.push(site.sample);
            }
        }
        if contexts.len() >= POOL_SIZE {
            break;
        }
    }
    contexts.truncate(POOL_SIZE);
    assert!(!contexts.is_empty(), "loop pool must not be empty");
    PoolEnv { contexts }
}

fn main() -> ExitCode {
    let mut env = build_env();
    let cfg = PpoConfig {
        train_batch: TRAIN_BATCH,
        ..PpoConfig::default()
    };
    let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::paper(), 3);
    println!(
        "== ext: train throughput (batch={TRAIN_BATCH}, pool={} loops, paper-size model) ==\n",
        env.contexts.len()
    );

    // Parity first (also warms both paths and the arena): identical RNG
    // seeds must give identical transitions.
    let reference = trainer.collect_reference(&mut env, &mut ChaCha8Rng::seed_from_u64(5));
    let batched = trainer.collect(&mut env, &mut ChaCha8Rng::seed_from_u64(5));
    let parity = reference == batched;
    println!(
        "parity (bitwise-identical transitions): {}",
        if parity { "ok" } else { "MISMATCH" }
    );

    let per_sample_rps = {
        let t0 = Instant::now();
        for rep in 0..REPS {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + rep as u64);
            trainer.collect_reference(&mut env, &mut rng);
        }
        (REPS * TRAIN_BATCH) as f64 / t0.elapsed().as_secs_f64()
    };
    let batched_rps = {
        let t0 = Instant::now();
        for rep in 0..REPS {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + rep as u64);
            trainer.collect(&mut env, &mut rng);
        }
        (REPS * TRAIN_BATCH) as f64 / t0.elapsed().as_secs_f64()
    };

    println!("{:<34} {:>16}", "path", "rollouts/s");
    println!(
        "{:<34} {:>16.1}",
        "per-sample (seed baseline)", per_sample_rps
    );
    println!("{:<34} {:>16.1}", "batched collect", batched_rps);

    let ratio = batched_rps / per_sample_rps;
    let pass = parity && ratio >= ACCEPTANCE_RATIO;
    println!("\nbatched/per-sample speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");

    let report = obj(vec![
        ("bench", Json::from("ext_train_throughput")),
        ("train_batch", Json::from(TRAIN_BATCH)),
        ("pool_loops", Json::from(env.contexts.len())),
        ("reps", Json::from(REPS)),
        ("per_sample_rollouts_per_sec", Json::from(per_sample_rps)),
        ("batched_rollouts_per_sec", Json::from(batched_rps)),
        ("speedup", Json::from(ratio)),
        ("acceptance_ratio", Json::from(ACCEPTANCE_RATIO)),
        ("parity", Json::from(parity)),
        ("pass", Json::from(pass)),
    ]);
    match std::fs::write("BENCH_train.json", report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_train.json"),
        Err(e) => eprintln!("could not write BENCH_train.json: {e}"),
    }

    if pass {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        println!("FAIL");
        ExitCode::FAILURE
    }
}
