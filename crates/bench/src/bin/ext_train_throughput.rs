//! Extension experiment: batched rollout collection throughput.
//!
//! NeuroVectorizer's training time is dominated by the embedding + policy
//! forward pass over loop observations, and the seed implementation paid
//! that cost per rollout sample: `PpoTrainer::collect` built a fresh
//! autodiff graph and ran a single-row forward for every one of the
//! `train_batch` episodes. The batched path embeds every *distinct*
//! context once, stacks the whole batch into one policy forward, and
//! samples actions row by row — with RNG consumption ordered so the
//! transitions are **bitwise-identical** to the per-sample path.
//!
//! This bench drives both paths with the paper-sized model (340-dim code
//! vectors, 64×64 policy) over a loop pool extracted from generated
//! kernels and reports rollouts/sec. Acceptance: batched ≥ 3× the
//! per-sample baseline at `train_batch = 64`, and the parity invariant
//! must hold. Results land in `BENCH_train.json`.
//!
//! It also isolates the **encoder**: the segmented
//! `CodeEmbedder::forward_batch` (one ragged attention forward over the
//! whole batch) against the per-sample-loop spelling
//! (`forward_batch_reference`), gated at ≥ 2× with bitwise-equal values,
//! reported to `BENCH_embed.json`.
//!
//! And the **kernels**: the deployed threaded + SIMD-unrolled matmul
//! against the tiled single-threaded reference baseline
//! (`matmul_accum_into_tiled`) on the stacked-projection shape. Bitwise
//! parity is asserted everywhere; the ≥ 2× threaded-speedup gate applies
//! only on hosts with ≥ 4 detected cores (a single-core runner cannot
//! speed up by threading, but it must not change a bit either).
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_train_throughput
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nvc_datasets::generator;
use nvc_embed::{extract_loop_samples, CodeEmbedder, EmbedConfig, PathSample};
use nvc_nn::{kernels, Graph, ParamStore, Tensor, TensorArena};
use nvc_rl::{ActionDims, BanditEnv, PpoConfig, PpoTrainer};
use nvc_serve::json::obj;
use nvc_serve::Json;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const ACCEPTANCE_RATIO: f64 = 3.0;
const EMBED_ACCEPTANCE_RATIO: f64 = 2.0;
/// Floor on the *dedup-free* segmented/per-sample ratio. On a flop-bound
/// single-core host segmentation alone is ~1× (the projection matmul
/// dominates and its FLOPs are identical), so this is a regression
/// guard, not a speedup gate: it keeps a segmented-kernel slowdown from
/// hiding behind the dedup win that clears the 2× gate above.
const EMBED_NODEDUP_FLOOR: f64 = 0.8;
const TRAIN_BATCH: usize = 64;
const POOL_SIZE: usize = 12;
const REPS: usize = 5;
const EMBED_REPS: usize = 10;
/// Threaded-kernel gate: required speedup of the deployed kernel at
/// `cores` threads over the tiled single-threaded baseline…
const KERNEL_ACCEPTANCE_RATIO: f64 = 2.0;
/// …applied only when at least this many cores are detected (parity is
/// asserted regardless of the core count).
const KERNEL_GATE_MIN_CORES: usize = 4;
/// Stacked-projection rows for the kernel measurement: a rollout batch's
/// worth of distinct contexts × ~paths each, the shape `segment_matmul`
/// actually feeds the kernel.
const KERNEL_ROWS: usize = 512;
const KERNEL_REPS: usize = 30;
/// Pool-vs-scoped driver A/B: required speedup of the persistent worker
/// pool over per-call `std::thread::scope` spawns at the same thread
/// count on the policy-head shape (64×340 · 340×64), where the work per
/// call is small enough that spawn overhead is a visible fraction…
const POOL_ACCEPTANCE_RATIO: f64 = 1.2;
/// …applied only on hosts with ≥ `KERNEL_GATE_MIN_CORES` cores (both
/// drivers run and their bits are compared on every host).
const POOL_SHAPE: (usize, usize, usize) = (64, 340, 64);
const POOL_REPS: usize = 1000;
/// Fast-vs-strict kernel-mode A/B: required speedup of the `Fast`
/// kernels (fused-FMA accumulators + `k`-split scheduling) over `Strict`
/// at the same thread count, applied only on hosts with ≥
/// `KERNEL_GATE_MIN_CORES` cores. The ε-parity bound below is asserted
/// on *every* host — a fast kernel that drifts is wrong at any speed.
const FAST_ACCEPTANCE_RATIO: f64 = 1.15;
/// Max `|fast − strict| / (Σ|a|·|b| + 1e-6)` allowed per output element
/// (the same relative bound `tests/fast_parity.rs` proves under proptest).
const FAST_REL_EPS: f64 = 1e-4;
/// The tall-thin policy-head product `k`-splitting exists for: a couple
/// of rollout rows against the 340-wide code vector.
const FAST_POLICY_SHAPE: (usize, usize, usize) = (2, 340, 64);
const FAST_STACKED_REPS: usize = 30;
const FAST_POLICY_REPS: usize = 2000;

/// A fixed loop pool with a cheap deterministic reward: the bench
/// measures collection cost, so the environment must be ~free.
struct PoolEnv {
    contexts: Vec<PathSample>,
}

impl BanditEnv for PoolEnv {
    fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    fn context(&self, idx: usize) -> &PathSample {
        &self.contexts[idx]
    }

    fn action_dims(&self) -> ActionDims {
        ActionDims { n_vf: 7, n_if: 5 }
    }

    fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64 {
        (idx as f64 * 0.31 + action.0 as f64 * 0.07 - action.1 as f64 * 0.05).sin()
    }
}

fn build_env() -> PoolEnv {
    let cfg = EmbedConfig::paper();
    let mut contexts = Vec::new();
    for kernel in generator::generate(11, 16) {
        for site in extract_loop_samples(&kernel.source, &cfg).expect("generated kernels parse") {
            if !site.sample.is_empty() {
                contexts.push(site.sample);
            }
        }
        if contexts.len() >= POOL_SIZE {
            break;
        }
    }
    contexts.truncate(POOL_SIZE);
    assert!(!contexts.is_empty(), "loop pool must not be empty");
    PoolEnv { contexts }
}

/// Encoder-only measurements over a `TRAIN_BATCH`-row ragged batch drawn
/// (with replacement, like rollout collection) from the pool.
struct EncoderOnly {
    /// Batches/sec of the per-sample-loop `forward_batch_reference`.
    per_sample_bps: f64,
    /// Batches/sec of the deployed segmented entry (`forward_rows`:
    /// content dedup + one segmented forward + row fan-out) — what
    /// collection, serving and the labelling passes actually run.
    segmented_bps: f64,
    /// Batches/sec of the segmented forward with dedup disabled (all 64
    /// rows embedded), isolating the segmentation itself.
    segmented_nodedup_bps: f64,
    /// Bitwise value parity of both segmented spellings vs the loop.
    parity: bool,
}

fn encoder_only(env: &PoolEnv) -> EncoderOnly {
    let cfg = EmbedConfig::paper();
    let mut store = ParamStore::new(7);
    let embedder = CodeEmbedder::new(&mut store, &cfg);
    let arena = TensorArena::new();
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let samples: Vec<&PathSample> = (0..TRAIN_BATCH)
        .map(|_| &env.contexts[rng.gen_range(0..env.contexts.len())])
        .collect();

    // Parity (and warmup): both segmented spellings must equal the
    // per-sample loop bitwise, row for row.
    let parity = {
        let mut g = Graph::with_arena(&store, &arena);
        let a = embedder.forward_batch_reference(&mut g, &samples).unwrap();
        let b = embedder.forward_batch(&mut g, &samples).unwrap();
        let c = embedder.forward_rows(&mut g, &samples).unwrap();
        g.value(a) == g.value(b) && g.value(a) == g.value(c)
    };

    let time = |run: &dyn Fn(&mut Graph<'_>) -> f32| {
        let t0 = Instant::now();
        for _ in 0..EMBED_REPS {
            let mut g = Graph::with_arena(&store, &arena);
            std::hint::black_box(run(&mut g));
        }
        EMBED_REPS as f64 / t0.elapsed().as_secs_f64()
    };
    let per_sample_bps = time(&|g| {
        let n = embedder.forward_batch_reference(g, &samples).unwrap();
        g.value(n).data()[0]
    });
    let segmented_bps = time(&|g| {
        let n = embedder.forward_rows(g, &samples).unwrap();
        g.value(n).data()[0]
    });
    let segmented_nodedup_bps = time(&|g| {
        let n = embedder.forward_batch(g, &samples).unwrap();
        g.value(n).data()[0]
    });
    EncoderOnly {
        per_sample_bps,
        segmented_bps,
        segmented_nodedup_bps,
        parity,
    }
}

/// Threaded/unrolled-kernel measurements on the stacked projection shape
/// (`KERNEL_ROWS×384 · 384×340`, the paper-size `ctx·W`).
struct KernelBench {
    /// Detected hardware parallelism.
    cores: usize,
    /// Products/sec of the tiled single-threaded reference baseline.
    tiled_pps: f64,
    /// Products/sec of the deployed kernel pinned to 1 thread (isolates
    /// the 8-wide unroll).
    unrolled_pps: f64,
    /// Products/sec of the deployed kernel at `cores` threads.
    threaded_pps: f64,
    /// Bitwise equality of both deployed variants vs the tiled baseline.
    parity: bool,
}

fn threaded_kernels() -> KernelBench {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = EmbedConfig::paper();
    let (m, k, n) = (KERNEL_ROWS, cfg.context_width(), cfg.code_dim);
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let a = Tensor::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
    let b = Tensor::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect());

    let mut tiled = Tensor::zeros(m, n);
    a.matmul_accum_into_tiled(&b, &mut tiled);
    kernels::set_matmul_threads(1);
    let unrolled = a.matmul(&b);
    kernels::set_matmul_threads(cores);
    let threaded = a.matmul(&b);
    let parity = unrolled == tiled && threaded == tiled;

    let time = |run: &dyn Fn() -> Tensor| {
        let t0 = Instant::now();
        for _ in 0..KERNEL_REPS {
            std::hint::black_box(run());
        }
        KERNEL_REPS as f64 / t0.elapsed().as_secs_f64()
    };
    let tiled_pps = {
        kernels::set_matmul_threads(1);
        time(&|| {
            let mut out = Tensor::zeros(m, n);
            a.matmul_accum_into_tiled(&b, &mut out);
            out
        })
    };
    let unrolled_pps = {
        kernels::set_matmul_threads(1);
        time(&|| a.matmul(&b))
    };
    let threaded_pps = {
        kernels::set_matmul_threads(cores);
        time(&|| a.matmul(&b))
    };
    kernels::set_matmul_threads(kernels::default_matmul_threads());

    KernelBench {
        cores,
        tiled_pps,
        unrolled_pps,
        threaded_pps,
        parity,
    }
}

/// Pool-vs-scoped A/B on the policy-head shape: same thread count, same
/// shard list, identical bits — only the per-call handoff differs
/// (condvar wake of persistent workers vs spawning fresh OS threads).
struct PoolBench {
    cores: usize,
    threads: usize,
    pool_pps: f64,
    scoped_pps: f64,
    parity: bool,
}

fn pool_vs_scoped() -> PoolBench {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Exercise the real multi-shard handoff even on small hosts; the
    // speedup gate still only applies at KERNEL_GATE_MIN_CORES.
    let threads = cores.max(2);
    let (m, k, n) = POOL_SHAPE;
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let a = Tensor::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
    let b = Tensor::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect());

    kernels::set_matmul_threads(threads);
    kernels::set_matmul_pool(true);
    let pooled = a.matmul(&b);
    kernels::set_matmul_pool(false);
    let scoped = a.matmul(&b);
    let parity = pooled == scoped;

    let time = |pool: bool| {
        kernels::set_matmul_pool(pool);
        let _ = std::hint::black_box(a.matmul(&b)); // warm (pool spin-up)
        let t0 = Instant::now();
        for _ in 0..POOL_REPS {
            std::hint::black_box(a.matmul(&b));
        }
        POOL_REPS as f64 / t0.elapsed().as_secs_f64()
    };
    let scoped_pps = time(false);
    let pool_pps = time(true);
    kernels::set_matmul_pool(std::env::var("NVC_MATMUL_POOL").map_or(true, |v| v.trim() != "0"));
    kernels::set_matmul_threads(kernels::default_matmul_threads());

    PoolBench {
        cores,
        threads,
        pool_pps,
        scoped_pps,
        parity,
    }
}

/// Fast-vs-strict kernel-mode A/B on the stacked-projection and policy
/// shapes, with unconditional ε-parity.
struct FastModeBench {
    cores: usize,
    threads: usize,
    /// (strict products/s, fast products/s, max relative error) per shape.
    stacked: (f64, f64, f64),
    policy: (f64, f64, f64),
    eps_ok: bool,
}

fn fast_vs_strict() -> FastModeBench {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.max(2);
    kernels::set_matmul_threads(threads);
    let cfg = EmbedConfig::paper();
    let stacked_shape = (KERNEL_ROWS, cfg.context_width(), cfg.code_dim);
    let mut eps_ok = true;

    let mut measure = |(m, k, n): (usize, usize, usize), reps: usize, seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        kernels::set_kernel_mode(kernels::KernelMode::Strict);
        let strict = a.matmul(&b);
        kernels::set_kernel_mode(kernels::KernelMode::Fast);
        let fast = a.matmul(&b);
        // ε-parity vs the accumulated magnitude each element saw.
        let mut scale = Tensor::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    scale[(i, j)] += a[(i, kk)].abs() * b[(kk, j)].abs();
                }
            }
        }
        let mut max_rel = 0.0f64;
        for ((&f, &st), &sc) in fast
            .data()
            .iter()
            .zip(strict.data().iter())
            .zip(scale.data().iter())
        {
            let rel = (f - st).abs() as f64 / (sc as f64 + 1e-6);
            max_rel = max_rel.max(rel);
            if !rel.is_finite() {
                eps_ok = false;
            }
        }
        if max_rel > FAST_REL_EPS {
            eps_ok = false;
        }
        let time = |mode: kernels::KernelMode| {
            kernels::set_kernel_mode(mode);
            let _ = std::hint::black_box(a.matmul(&b)); // warm
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(a.matmul(&b));
            }
            reps as f64 / t0.elapsed().as_secs_f64()
        };
        let strict_pps = time(kernels::KernelMode::Strict);
        let fast_pps = time(kernels::KernelMode::Fast);
        (strict_pps, fast_pps, max_rel)
    };

    let stacked = measure(stacked_shape, FAST_STACKED_REPS, 47);
    let policy = measure(FAST_POLICY_SHAPE, FAST_POLICY_REPS, 53);
    kernels::set_kernel_mode(kernels::default_kernel_mode());
    kernels::set_matmul_threads(kernels::default_matmul_threads());

    FastModeBench {
        cores,
        threads,
        stacked,
        policy,
        eps_ok,
    }
}

fn main() -> ExitCode {
    let mut env = build_env();
    let cfg = PpoConfig {
        train_batch: TRAIN_BATCH,
        ..PpoConfig::default()
    };
    let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::paper(), 3);
    println!(
        "== ext: train throughput (batch={TRAIN_BATCH}, pool={} loops, paper-size model) ==\n",
        env.contexts.len()
    );

    // Parity first (also warms both paths and the arena): identical RNG
    // seeds must give identical transitions.
    let reference = trainer.collect_reference(&mut env, &mut ChaCha8Rng::seed_from_u64(5));
    let batched = trainer.collect(&mut env, &mut ChaCha8Rng::seed_from_u64(5));
    let parity = reference == batched;
    println!(
        "parity (bitwise-identical transitions): {}",
        if parity { "ok" } else { "MISMATCH" }
    );

    let per_sample_rps = {
        let t0 = Instant::now();
        for rep in 0..REPS {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + rep as u64);
            trainer.collect_reference(&mut env, &mut rng);
        }
        (REPS * TRAIN_BATCH) as f64 / t0.elapsed().as_secs_f64()
    };
    let batched_rps = {
        let t0 = Instant::now();
        for rep in 0..REPS {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + rep as u64);
            trainer.collect(&mut env, &mut rng);
        }
        (REPS * TRAIN_BATCH) as f64 / t0.elapsed().as_secs_f64()
    };

    println!("{:<34} {:>16}", "path", "rollouts/s");
    println!(
        "{:<34} {:>16.1}",
        "per-sample (seed baseline)", per_sample_rps
    );
    println!("{:<34} {:>16.1}", "batched collect", batched_rps);

    let ratio = batched_rps / per_sample_rps;
    let pass = parity && ratio >= ACCEPTANCE_RATIO;
    println!("\nbatched/per-sample speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");

    // Encoder-only gate: the deployed segmented entry (content dedup +
    // one ragged segmented forward + row fan-out) vs the per-sample
    // loop, over a collection-style batch. The no-dedup segmented ratio
    // is reported alongside so the two effects stay distinguishable.
    let embed = encoder_only(&env);
    let embed_ratio = embed.segmented_bps / embed.per_sample_bps;
    let embed_nodedup_ratio = embed.segmented_nodedup_bps / embed.per_sample_bps;
    let embed_pass = embed.parity
        && embed_ratio >= EMBED_ACCEPTANCE_RATIO
        && embed_nodedup_ratio >= EMBED_NODEDUP_FLOOR;
    println!("\n== encoder only (batch={TRAIN_BATCH}, paper-size encoder) ==");
    println!("{:<34} {:>16}", "path", "batches/s");
    println!(
        "{:<34} {:>16.1}",
        "per-sample loop (reference)", embed.per_sample_bps
    );
    println!(
        "{:<34} {:>16.1}",
        "segmented (dedup + fan-out)", embed.segmented_bps
    );
    println!(
        "{:<34} {:>16.1}",
        "segmented (no dedup)", embed.segmented_nodedup_bps
    );
    println!(
        "encoder parity (bitwise values): {}",
        if embed.parity { "ok" } else { "MISMATCH" }
    );
    println!(
        "segmented/per-sample encoder speedup: {embed_ratio:.1}x (acceptance: >= {EMBED_ACCEPTANCE_RATIO:.0}x); \
         no-dedup: {embed_nodedup_ratio:.2}x (regression floor: >= {EMBED_NODEDUP_FLOOR:.1}x)"
    );

    let embed_report = obj(vec![
        ("bench", Json::from("ext_train_throughput/encoder")),
        ("train_batch", Json::from(TRAIN_BATCH)),
        ("pool_loops", Json::from(env.contexts.len())),
        ("reps", Json::from(EMBED_REPS)),
        (
            "per_sample_batches_per_sec",
            Json::from(embed.per_sample_bps),
        ),
        ("segmented_batches_per_sec", Json::from(embed.segmented_bps)),
        (
            "segmented_nodedup_batches_per_sec",
            Json::from(embed.segmented_nodedup_bps),
        ),
        ("speedup", Json::from(embed_ratio)),
        ("nodedup_speedup", Json::from(embed_nodedup_ratio)),
        ("acceptance_ratio", Json::from(EMBED_ACCEPTANCE_RATIO)),
        ("nodedup_floor", Json::from(EMBED_NODEDUP_FLOOR)),
        ("parity", Json::from(embed.parity)),
        ("pass", Json::from(embed_pass)),
    ]);
    match std::fs::write("BENCH_embed.json", embed_report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_embed.json"),
        Err(e) => eprintln!("could not write BENCH_embed.json: {e}"),
    }

    // Kernel-level gate: deployed threaded + unrolled matmul vs the
    // tiled single-threaded reference on the stacked-projection shape.
    // Parity is asserted on every host; the ≥ 2× speedup gate only on
    // hosts with enough cores for threading to be able to win.
    let kb = threaded_kernels();
    let kernel_ratio = kb.threaded_pps / kb.tiled_pps;
    let unrolled_ratio = kb.unrolled_pps / kb.tiled_pps;
    // Parity failures flow through kernel_pass (not an assert) so the
    // report below still prints and BENCH_train.json still records
    // `kernel_parity: false` before the process exits nonzero.
    let kernel_gate_applied = kb.cores >= KERNEL_GATE_MIN_CORES;
    let kernel_pass =
        kb.parity && (!kernel_gate_applied || kernel_ratio >= KERNEL_ACCEPTANCE_RATIO);
    println!(
        "\n== kernels ({KERNEL_ROWS}x384 · 384x340 stacked projection, {} core(s) detected) ==",
        kb.cores
    );
    println!("{:<34} {:>16}", "kernel", "products/s");
    println!(
        "{:<34} {:>16.1}",
        "tiled 1-thread (reference)", kb.tiled_pps
    );
    println!("{:<34} {:>16.1}", "unrolled 1-thread", kb.unrolled_pps);
    println!(
        "{:<34} {:>16.1}",
        format!("unrolled {} threads", kb.cores),
        kb.threaded_pps
    );
    println!(
        "kernel parity (bitwise vs tiled): {}",
        if kb.parity { "ok" } else { "MISMATCH" }
    );
    println!(
        "threaded/tiled kernel speedup: {kernel_ratio:.2}x (unrolled alone: {unrolled_ratio:.2}x); \
         acceptance >= {KERNEL_ACCEPTANCE_RATIO:.0}x {}",
        if kernel_gate_applied {
            "applies (>= 4 cores)"
        } else {
            "not applied (< 4 cores — parity only)"
        }
    );

    // Pool-vs-scoped driver A/B: the persistent pool must beat per-call
    // scoped spawns at the same thread count on the policy-head shape
    // (gated on core count — a 1-core host can't show the win but must
    // still match bitwise).
    let pb = pool_vs_scoped();
    let pool_ratio = pb.pool_pps / pb.scoped_pps;
    let pool_gate_applied = pb.cores >= KERNEL_GATE_MIN_CORES;
    let pool_pass = pb.parity && (!pool_gate_applied || pool_ratio >= POOL_ACCEPTANCE_RATIO);
    println!(
        "\n== matmul driver ({m}x{k} · {k}x{n} policy shape, {t} threads) ==",
        m = POOL_SHAPE.0,
        k = POOL_SHAPE.1,
        n = POOL_SHAPE.2,
        t = pb.threads
    );
    println!("{:<34} {:>16}", "driver", "products/s");
    println!("{:<34} {:>16.1}", "scoped per-call spawns", pb.scoped_pps);
    println!("{:<34} {:>16.1}", "persistent worker pool", pb.pool_pps);
    println!(
        "driver parity (bitwise): {}",
        if pb.parity { "ok" } else { "MISMATCH" }
    );
    println!(
        "pool/scoped speedup: {pool_ratio:.2}x; acceptance >= {POOL_ACCEPTANCE_RATIO:.1}x {}",
        if pool_gate_applied {
            "applies (>= 4 cores)"
        } else {
            "not applied (< 4 cores — parity only)"
        }
    );

    // Fast-vs-strict kernel-mode A/B: ε-parity always; the ≥ 1.15×
    // speedup gate (FMA + k-split have to actually pay for their
    // relaxed-reassociation contract) only on >= 4-core hosts.
    let fb = fast_vs_strict();
    let fast_stacked_ratio = fb.stacked.1 / fb.stacked.0;
    let fast_policy_ratio = fb.policy.1 / fb.policy.0;
    let fast_gate_applied = fb.cores >= KERNEL_GATE_MIN_CORES;
    let fast_pass = fb.eps_ok
        && (!fast_gate_applied
            || (fast_stacked_ratio >= FAST_ACCEPTANCE_RATIO
                && fast_policy_ratio >= FAST_ACCEPTANCE_RATIO));
    println!(
        "\n== kernel_fast (strict vs fast mode, {} threads) ==",
        fb.threads
    );
    println!("{:<34} {:>13} {:>13}", "shape", "strict p/s", "fast p/s");
    println!(
        "{:<34} {:>13.1} {:>13.1}",
        format!("{}x384 · 384x340 stacked", KERNEL_ROWS),
        fb.stacked.0,
        fb.stacked.1
    );
    println!(
        "{:<34} {:>13.1} {:>13.1}",
        format!(
            "{}x{} · {}x{} policy (k-split)",
            FAST_POLICY_SHAPE.0, FAST_POLICY_SHAPE.1, FAST_POLICY_SHAPE.1, FAST_POLICY_SHAPE.2
        ),
        fb.policy.0,
        fb.policy.1
    );
    println!(
        "fast ε-parity (rel err ≤ {FAST_REL_EPS:.0e}): {} (stacked {:.2e}, policy {:.2e})",
        if fb.eps_ok { "ok" } else { "VIOLATED" },
        fb.stacked.2,
        fb.policy.2
    );
    println!(
        "fast/strict speedup: stacked {fast_stacked_ratio:.2}x, policy {fast_policy_ratio:.2}x; \
         acceptance >= {FAST_ACCEPTANCE_RATIO:.2}x {}",
        if fast_gate_applied {
            "applies (>= 4 cores)"
        } else {
            "not applied (< 4 cores — ε-parity only)"
        }
    );

    let report = obj(vec![
        ("bench", Json::from("ext_train_throughput")),
        ("train_batch", Json::from(TRAIN_BATCH)),
        ("pool_loops", Json::from(env.contexts.len())),
        ("reps", Json::from(REPS)),
        ("per_sample_rollouts_per_sec", Json::from(per_sample_rps)),
        ("batched_rollouts_per_sec", Json::from(batched_rps)),
        ("speedup", Json::from(ratio)),
        ("acceptance_ratio", Json::from(ACCEPTANCE_RATIO)),
        ("parity", Json::from(parity)),
        ("kernel_cores_detected", Json::from(kb.cores)),
        ("kernel_rows", Json::from(KERNEL_ROWS)),
        ("kernel_tiled_products_per_sec", Json::from(kb.tiled_pps)),
        (
            "kernel_unrolled_products_per_sec",
            Json::from(kb.unrolled_pps),
        ),
        (
            "kernel_threaded_products_per_sec",
            Json::from(kb.threaded_pps),
        ),
        ("kernel_threaded_ratio", Json::from(kernel_ratio)),
        ("kernel_unrolled_ratio", Json::from(unrolled_ratio)),
        (
            "kernel_acceptance_ratio",
            Json::from(KERNEL_ACCEPTANCE_RATIO),
        ),
        ("kernel_gate_applied", Json::from(kernel_gate_applied)),
        ("kernel_parity", Json::from(kb.parity)),
        ("kernel_pass", Json::from(kernel_pass)),
        ("pool_threads", Json::from(pb.threads)),
        ("pool_products_per_sec", Json::from(pb.pool_pps)),
        ("scoped_products_per_sec", Json::from(pb.scoped_pps)),
        ("pool_ratio", Json::from(pool_ratio)),
        ("pool_acceptance_ratio", Json::from(POOL_ACCEPTANCE_RATIO)),
        ("pool_gate_applied", Json::from(pool_gate_applied)),
        ("pool_parity", Json::from(pb.parity)),
        ("pool_pass", Json::from(pool_pass)),
        (
            "kernel_fast",
            obj(vec![
                ("threads", Json::from(fb.threads)),
                ("stacked_strict_products_per_sec", Json::from(fb.stacked.0)),
                ("stacked_fast_products_per_sec", Json::from(fb.stacked.1)),
                ("stacked_ratio", Json::from(fast_stacked_ratio)),
                ("stacked_max_rel_err", Json::from(fb.stacked.2)),
                ("policy_strict_products_per_sec", Json::from(fb.policy.0)),
                ("policy_fast_products_per_sec", Json::from(fb.policy.1)),
                ("policy_ratio", Json::from(fast_policy_ratio)),
                ("policy_max_rel_err", Json::from(fb.policy.2)),
                ("acceptance_ratio", Json::from(FAST_ACCEPTANCE_RATIO)),
                ("rel_eps", Json::from(FAST_REL_EPS)),
                ("gate_applied", Json::from(fast_gate_applied)),
                ("eps_parity", Json::from(fb.eps_ok)),
                ("pass", Json::from(fast_pass)),
            ]),
        ),
        (
            "pass",
            Json::from(pass && kernel_pass && pool_pass && fast_pass),
        ),
    ]);
    match std::fs::write("BENCH_train.json", report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_train.json"),
        Err(e) => eprintln!("could not write BENCH_train.json: {e}"),
    }

    if pass && embed_pass && kernel_pass && pool_pass && fast_pass {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        println!("FAIL");
        ExitCode::FAILURE
    }
}
