//! Figure 1: dot-product kernel performance for every (VF, IF),
//! normalized to the baseline cost model (§2.1).

use neurovectorizer::experiments::fig1_dot_product_grid;
use nvc_machine::TargetConfig;

fn main() {
    let target = TargetConfig::i7_8559u();
    let data = fig1_dot_product_grid(&target);
    println!("== Figure 1: dot product VF x IF grid (normalized to baseline) ==");
    println!("baseline decision: {}", data.baseline);
    println!(
        "baseline over scalar: {:.2}x   (paper: 2.6x)",
        data.baseline_over_scalar
    );
    print!("{:>6}", "VF\\IF");
    for i in &data.ifs {
        print!("{i:>9}");
    }
    println!();
    for (vi, vf) in data.vfs.iter().enumerate() {
        print!("{vf:>6}");
        for ii in 0..data.ifs.len() {
            let v = data.normalized[vi][ii];
            let mark = if v > 1.0 { "*" } else { " " };
            print!("{v:>8.3}{mark}");
        }
        println!();
    }
    println!(
        "\nbest: {} at {:.3}x over baseline  (paper: (VF=64, IF=8) at ~1.2x)",
        data.best.0, data.best.1
    );
    println!(
        "{} of {} configurations beat the baseline  (paper: 26 of 35)",
        data.better_than_baseline(),
        data.vfs.len() * data.ifs.len()
    );
}
