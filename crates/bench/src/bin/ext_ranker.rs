//! §5 extension: the "vanilla deep neural network" alternative — a
//! learned cost model that ranks VF/IF configurations — evaluated next to
//! the PPO policy on the Figure-7 benchmarks.

use neurovectorizer::experiments::{
    ext_ranker_comparison, figure7_benchmarks, train_framework, Scale,
};
use nv_bench::print_comparison;

fn main() {
    let scale = Scale::bench();
    let (nv, env, _) = train_framework(scale);
    let data = ext_ranker_comparison(&nv, &env, &figure7_benchmarks(), scale.seed);
    print_comparison(
        "Extension (§5): learned cost-model ranker vs PPO policy",
        &data,
    );
    println!("\npaper: proposed as future work — \"equivalent to learning a new cost");
    println!("model\" that, unlike NNS and decision trees, trains end-to-end.");
}
