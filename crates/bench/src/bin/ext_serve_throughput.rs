//! Extension experiment: serving throughput vs. cache hit rate vs. batch
//! size.
//!
//! Drives `nvc-serve` with the paper-sized model (340-dim code vectors,
//! 64×64 policy — the configuration a deployment would actually ship) over
//! a synthetic kernel pool and measures requests/sec in three regimes:
//!
//! 1. **cold** — cache disabled, batch size 1, one worker: every request
//!    pays the full embedding + policy forward pass (the one-shot CLI
//!    cost);
//! 2. **batched** — cache still disabled, concurrent clients, sweeping
//!    batch size: what coalescing forward passes alone buys;
//! 3. **warm** — cache enabled after a priming pass: repeated loop shapes
//!    skip the model entirely.
//!
//! The headline acceptance number: warm req/s must be ≥ 5× cold req/s.
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_serve_throughput
//! ```

use std::process::ExitCode;
use std::time::Instant;

use neurovectorizer::{NeuroVectorizer, NvConfig, ServeConfig, ServeHandle};
use nvc_datasets::generator;

const ACCEPTANCE_RATIO: f64 = 5.0;

fn start(nv_seed: u64, serve: ServeConfig) -> ServeHandle {
    let mut cfg = NvConfig::paper().with_seed(nv_seed);
    cfg.serve = serve;
    NeuroVectorizer::new(cfg).serve()
}

/// Sends every source once from `clients` threads; returns req/s.
fn drive(handle: &ServeHandle, sources: &[String], clients: usize, passes: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                for _ in 0..passes {
                    for src in sources {
                        handle.vectorize(src).expect("vectorize");
                    }
                }
            });
        }
    });
    let requests = (clients * passes * sources.len()) as f64;
    requests / t0.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let pool = generator::generate(7, 24);
    let sources: Vec<String> = pool.iter().map(|k| k.source.clone()).collect();
    println!(
        "== ext: serve throughput ({} kernels, paper-size model) ==\n",
        sources.len()
    );
    println!(
        "{:<34} {:>8} {:>8} {:>12} {:>10}",
        "configuration", "clients", "batch", "req/s", "hit rate"
    );

    // 1. Cold: the per-request cost of the unamortized path.
    let cold = {
        let handle = start(
            3,
            ServeConfig::default()
                .with_cache_capacity(0)
                .with_batch_size(1)
                .with_workers(1),
        );
        let rps = drive(&handle, &sources, 1, 2);
        let stats = handle.cache_stats();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>9.0}%",
            "cold (no cache)",
            1,
            1,
            rps,
            stats.hit_rate() * 100.0
        );
        rps
    };

    // 2. Batching sweep: concurrent misses coalesce into shared forwards.
    for batch in [1usize, 8, 32] {
        let handle = start(
            3,
            ServeConfig::default()
                .with_cache_capacity(0)
                .with_batch_size(batch)
                .with_workers(2),
        );
        let rps = drive(&handle, &sources, 8, 1);
        let m = handle.metrics();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>10}",
            format!("batched (no cache, mean={:.1})", m.mean_batch),
            8,
            batch,
            rps,
            "-"
        );
    }

    // 3. Warm: prime once, then every loop shape hits the cache. The
    // acceptance comparison uses the *same* client/worker/batch counts as
    // the cold run, so the ratio isolates the cache (not parallelism).
    let warm = {
        let handle = start(3, ServeConfig::default().with_batch_size(1).with_workers(1));
        drive(&handle, &sources, 1, 1); // priming pass
        let rps = drive(&handle, &sources, 1, 3);
        let stats = handle.cache_stats();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>9.0}%",
            "warm (primed cache)",
            1,
            1,
            rps,
            stats.hit_rate() * 100.0
        );
        rps
    };

    // Informational: warm + concurrency, the full production configuration.
    {
        let handle = start(3, ServeConfig::default());
        drive(&handle, &sources, 1, 1); // priming pass
        let rps = drive(&handle, &sources, 4, 3);
        let stats = handle.cache_stats();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>9.0}%",
            "warm + concurrent clients",
            4,
            32,
            rps,
            stats.hit_rate() * 100.0
        );
    }

    let ratio = warm / cold;
    println!("\nwarm/cold speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");
    if ratio >= ACCEPTANCE_RATIO {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        println!("FAIL");
        ExitCode::FAILURE
    }
}
