//! Extension experiment: serving throughput vs. cache hit rate vs. batch
//! size.
//!
//! Drives `nvc-serve` with the paper-sized model (340-dim code vectors,
//! 64×64 policy — the configuration a deployment would actually ship) over
//! a synthetic kernel pool and measures requests/sec in three regimes:
//!
//! 1. **cold** — cache disabled, batch size 1, one worker: every request
//!    pays the full embedding + policy forward pass (the one-shot CLI
//!    cost);
//! 2. **batched** — cache still disabled, concurrent clients, sweeping
//!    batch size: what coalescing forward passes alone buys;
//! 3. **warm** — cache enabled after a priming pass: repeated loop shapes
//!    skip the model entirely;
//! 4. **traced warm** — the warm path again with `nvc-obs` span tracing
//!    enabled, interleaved best-of-3 A/B against tracing disabled on the
//!    *same* primed handle: the observability tax on the hottest path.
//!
//! Two acceptance gates: warm req/s must be ≥ 5× cold req/s, and the
//! traced warm path must stay within 5% of the untraced one. Results
//! (including the overhead measurement) land in `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p nv-bench --bin ext_serve_throughput
//! ```

use std::process::ExitCode;
use std::time::Instant;

use neurovectorizer::{NeuroVectorizer, NvConfig, ServeConfig, ServeHandle};
use nvc_datasets::generator;
use nvc_serve::json::obj;
use nvc_serve::Json;

const ACCEPTANCE_RATIO: f64 = 5.0;
/// Tracing may cost at most this fraction of warm throughput.
const MAX_TRACE_OVERHEAD: f64 = 0.05;

fn start(nv_seed: u64, serve: ServeConfig) -> ServeHandle {
    let mut cfg = NvConfig::paper().with_seed(nv_seed);
    cfg.serve = serve;
    NeuroVectorizer::new(cfg).serve()
}

/// Sends every source once from `clients` threads; returns req/s.
fn drive(handle: &ServeHandle, sources: &[String], clients: usize, passes: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                for _ in 0..passes {
                    for src in sources {
                        handle.vectorize(src).expect("vectorize");
                    }
                }
            });
        }
    });
    let requests = (clients * passes * sources.len()) as f64;
    requests / t0.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let pool = generator::generate(7, 24);
    let sources: Vec<String> = pool.iter().map(|k| k.source.clone()).collect();
    println!(
        "== ext: serve throughput ({} kernels, paper-size model) ==\n",
        sources.len()
    );
    println!(
        "{:<34} {:>8} {:>8} {:>12} {:>10}",
        "configuration", "clients", "batch", "req/s", "hit rate"
    );

    // 1. Cold: the per-request cost of the unamortized path.
    let cold = {
        let handle = start(
            3,
            ServeConfig::default()
                .with_cache_capacity(0)
                .with_batch_size(1)
                .with_workers(1),
        );
        let rps = drive(&handle, &sources, 1, 2);
        let stats = handle.cache_stats();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>9.0}%",
            "cold (no cache)",
            1,
            1,
            rps,
            stats.hit_rate() * 100.0
        );
        rps
    };

    // 2. Batching sweep: concurrent misses coalesce into shared forwards.
    for batch in [1usize, 8, 32] {
        let handle = start(
            3,
            ServeConfig::default()
                .with_cache_capacity(0)
                .with_batch_size(batch)
                .with_workers(2),
        );
        let rps = drive(&handle, &sources, 8, 1);
        let m = handle.metrics();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>10}",
            format!("batched (no cache, mean={:.1})", m.mean_batch),
            8,
            batch,
            rps,
            "-"
        );
    }

    // 3. Warm: prime once, then every loop shape hits the cache. The
    // acceptance comparison uses the *same* client/worker/batch counts as
    // the cold run, so the ratio isolates the cache (not parallelism).
    let warm = {
        let handle = start(3, ServeConfig::default().with_batch_size(1).with_workers(1));
        drive(&handle, &sources, 1, 1); // priming pass
        let rps = drive(&handle, &sources, 1, 3);
        let stats = handle.cache_stats();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>9.0}%",
            "warm (primed cache)",
            1,
            1,
            rps,
            stats.hit_rate() * 100.0
        );
        rps
    };

    // Informational: warm + concurrency, the full production configuration.
    {
        let handle = start(3, ServeConfig::default());
        drive(&handle, &sources, 1, 1); // priming pass
        let rps = drive(&handle, &sources, 4, 3);
        let stats = handle.cache_stats();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>9.0}%",
            "warm + concurrent clients",
            4,
            32,
            rps,
            stats.hit_rate() * 100.0
        );
    }

    // 4. The observability tax: the warm path with span tracing on vs.
    // off, on the *same* primed handle. Interleaved best-of-3 per leg so
    // scheduler noise hits both sides symmetrically; no output path is
    // set, so this measures the ring writes themselves, not file I/O.
    let (warm_off, warm_on) = {
        let handle = start(3, ServeConfig::default().with_batch_size(1).with_workers(1));
        drive(&handle, &sources, 1, 1); // priming pass
        let (mut best_off, mut best_on) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            nvc_obs::disable_tracing();
            best_off = best_off.max(drive(&handle, &sources, 1, 3));
            nvc_obs::enable_tracing();
            best_on = best_on.max(drive(&handle, &sources, 1, 3));
        }
        nvc_obs::disable_tracing();
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>10}",
            "warm, tracing off (best of 3)", 1, 1, best_off, "-"
        );
        println!(
            "{:<34} {:>8} {:>8} {:>12.1} {:>10}",
            "warm, tracing ON  (best of 3)", 1, 1, best_on, "-"
        );
        (best_off, best_on)
    };

    let ratio = warm / cold;
    let overhead = 1.0 - warm_on / warm_off;
    println!("\nwarm/cold speedup: {ratio:.1}x (acceptance: >= {ACCEPTANCE_RATIO:.0}x)");
    println!(
        "tracing overhead on warm path: {:.1}% (acceptance: <= {:.0}%)",
        overhead * 100.0,
        MAX_TRACE_OVERHEAD * 100.0
    );

    let cache_ok = ratio >= ACCEPTANCE_RATIO;
    let trace_ok = warm_on >= (1.0 - MAX_TRACE_OVERHEAD) * warm_off;
    let report = obj(vec![
        ("bench", Json::from("ext_serve_throughput")),
        ("cold_rps", Json::from(cold)),
        ("warm_rps", Json::from(warm)),
        ("warm_cold_ratio", Json::from(ratio)),
        ("acceptance_ratio", Json::from(ACCEPTANCE_RATIO)),
        ("warm_untraced_rps", Json::from(warm_off)),
        ("warm_traced_rps", Json::from(warm_on)),
        ("trace_overhead", Json::from(overhead)),
        ("max_trace_overhead", Json::from(MAX_TRACE_OVERHEAD)),
        ("pass", Json::from(cache_ok && trace_ok)),
    ]);
    match std::fs::write("BENCH_serve.json", report.render() + "\n") {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }

    if cache_ok && trace_ok {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        if !cache_ok {
            println!("FAIL: warm/cold ratio below acceptance");
        }
        if !trace_ok {
            println!(
                "FAIL: tracing overhead above {:.0}%",
                MAX_TRACE_OVERHEAD * 100.0
            );
        }
        ExitCode::FAILURE
    }
}
