//! Criterion microbenchmarks for the threaded matmul kernel family.
//!
//! The same embed/policy/backward shapes as the `matmul` bench, swept
//! over 1/2/4/8 kernel worker threads, plus the tiled single-threaded
//! reference baseline for each shape. The work floor is dropped to 1 so
//! the labelled thread count is the thread count that actually runs —
//! on small shapes that makes thread overhead visible on purpose, which
//! is exactly what the production work floor exists to avoid. Run with:
//!
//! ```text
//! cargo bench -p nv-bench --bench matmul_threaded
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nvc_nn::{kernels, Tensor};

/// Deterministic pseudo-random tensor (no RNG dependency needed here).
fn filled(rows: usize, cols: usize, phase: f32) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| (i as f32 * 0.37 + phase).sin())
            .collect(),
    )
}

fn bench_matmul_threaded(c: &mut Criterion) {
    kernels::set_matmul_grain(1);

    // Forward shapes: the stacked segmented projection over a rollout
    // batch (the system's flop-dominant matmul), the batched policy
    // input layer, and the small hidden layer where threading can only
    // lose.
    for &(name, m, k, n) in &[
        (
            "embed_project_512x384_384x340",
            512usize,
            384usize,
            340usize,
        ),
        ("embed_project_60x384_384x340", 60, 384, 340),
        ("policy_input_64x340_340x64", 64, 340, 64),
        ("policy_hidden_64x64_64x64", 64, 64, 64),
    ] {
        let a = filled(m, k, 0.1);
        let b = filled(k, n, 0.7);
        kernels::set_matmul_threads(1);
        c.bench_function(&format!("matmul_threaded/{name}/tiled_baseline"), |bch| {
            bch.iter(|| {
                let mut out = Tensor::zeros(m, n);
                black_box(&a).matmul_accum_into_tiled(black_box(&b), &mut out);
                out
            })
        });
        for threads in [1usize, 2, 4, 8] {
            kernels::set_matmul_threads(threads);
            c.bench_function(&format!("matmul_threaded/{name}/t{threads}"), |bch| {
                bch.iter(|| black_box(&a).matmul(black_box(&b)))
            });
        }
    }

    // Backward shapes: xᵀ·g (weight gradient of the stacked projection)
    // and g·wᵀ (input gradient of the policy layer).
    let x = filled(512, 384, 0.3);
    let dproj = filled(512, 340, 0.9);
    let g = filled(64, 64, 0.2);
    let w = filled(340, 64, 0.4);
    for threads in [1usize, 2, 4, 8] {
        kernels::set_matmul_threads(threads);
        c.bench_function(
            &format!("matmul_threaded/embed_dw_tn_384x512_512x340/t{threads}"),
            |bch| bch.iter(|| black_box(&x).matmul_tn(black_box(&dproj))),
        );
        c.bench_function(
            &format!("matmul_threaded/policy_dx_nt_64x64_340x64/t{threads}"),
            |bch| bch.iter(|| black_box(&g).matmul_nt(black_box(&w))),
        );
    }

    kernels::set_matmul_threads(1);
    kernels::set_matmul_grain(kernels::DEFAULT_MATMUL_GRAIN);
}

criterion_group!(
    name = matmul_threaded;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul_threaded
);
criterion_main!(matmul_threaded);
