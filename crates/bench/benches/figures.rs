//! Criterion wrappers around the figure experiments — one bench target
//! per paper table/figure, so `cargo bench` demonstrably regenerates every
//! result. Heavy experiments (training) run at smoke scale here; the
//! `fig*` binaries run the full bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use neurovectorizer::experiments::{
    fig1_dot_product_grid, fig2_bruteforce_suite, fig6_action_spaces, fig7_comparison,
    fig8_polybench, fig9_mibench, figure7_benchmarks, train_framework, Scale,
};
use nvc_machine::TargetConfig;

fn bench_fig1(c: &mut Criterion) {
    let target = TargetConfig::i7_8559u();
    c.bench_function("fig1/dot_product_grid", |b| {
        b.iter(|| {
            let d = fig1_dot_product_grid(black_box(&target));
            assert!(d.better_than_baseline() > 0);
            d.best.1
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let target = TargetConfig::i7_8559u();
    c.bench_function("fig2/bruteforce_suite", |b| {
        b.iter(|| fig2_bruteforce_suite(black_box(&target)).len())
    });
}

fn bench_fig6(c: &mut Criterion) {
    let mut scale = Scale::smoke();
    scale.iterations = 2;
    scale.train_kernels = 12;
    c.bench_function("fig6/action_spaces_smoke", |b| {
        b.iter(|| fig6_action_spaces(black_box(scale)).len())
    });
}

fn bench_fig789(c: &mut Criterion) {
    // Train once (the expensive part) and time the evaluation sweeps.
    let (nv, env, _) = train_framework(Scale::smoke());
    let benches = figure7_benchmarks();
    c.bench_function("fig7/eval_12_benchmarks_7_methods", |b| {
        b.iter(|| {
            fig7_comparison(black_box(&nv), &env, &benches)
                .speedups
                .len()
        })
    });
    c.bench_function("fig8/polybench_4_methods", |b| {
        b.iter(|| fig8_polybench(black_box(&nv)).speedups.len())
    });
    c.bench_function("fig9/mibench_3_methods", |b| {
        b.iter(|| fig9_mibench(black_box(&nv)).speedups.len())
    });
}

fn bench_training(c: &mut Criterion) {
    let mut scale = Scale::smoke();
    scale.iterations = 1;
    scale.train_kernels = 12;
    scale.train_batch = 64;
    c.bench_function("fig5/one_ppo_iteration_smoke", |b| {
        b.iter(|| {
            let (_, _, stats) = train_framework(black_box(scale));
            stats.len()
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig6, bench_fig789, bench_training
);
criterion_main!(figures);
