//! Criterion microbenchmarks for the `nvc-nn` segment kernels — the
//! ragged-batch attention primitives the segmented encoder runs per
//! flush/training batch (`segment_softmax_rows` + `segment_weighted_sum`
//! over a shared `Segments` partition, plus the `segment_matmul`
//! backward with its per-segment reduction order).
//!
//! Shapes span realistic serving/training batches: 8–64 segments
//! (loops per batch) × 4–200 rows (path contexts per loop) at the
//! paper's 340-wide code vectors. Run with:
//!
//! ```text
//! cargo bench -p nv-bench --bench segments
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nvc_nn::{Graph, ParamStore, Segments, Tensor, TensorArena};

const CODE_DIM: usize = 340;

/// Deterministic ragged segment lengths in `[lo, hi]`.
fn ragged_lens(segments: usize, lo: usize, hi: usize) -> Vec<usize> {
    (0..segments)
        .map(|s| lo + (s * 7919 + 13) % (hi - lo + 1))
        .collect()
}

fn filled(rows: usize, cols: usize, phase: f32) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| (i as f32 * 0.43 + phase).sin())
            .collect(),
    )
}

/// An arena-backed copy of `t`: the buffer recycles into the pool when
/// the graph drops, so per-iteration input setup is a memcpy instead of
/// a multi-megabyte `malloc`/`free` round trip (which would dominate the
/// kernels being measured).
fn arena_copy(arena: &TensorArena, t: &Tensor) -> Tensor {
    let mut out = arena.alloc(t.rows(), t.cols());
    out.data_mut().copy_from_slice(t.data());
    out
}

fn bench_segments(c: &mut Criterion) {
    let store = ParamStore::new(0);
    let arena = TensorArena::new();
    for &(name, segments, lo, hi) in &[
        ("seg/8x4-32", 8usize, 4usize, 32usize),
        ("seg/32x4-100", 32, 4, 100),
        ("seg/64x4-200", 64, 4, 200),
    ] {
        let lens = ragged_lens(segments, lo, hi);
        let segs = Segments::from_lens(lens.iter().copied());
        let n = segs.total_rows();
        let scores = filled(n, 1, 0.2);
        let values = filled(n, CODE_DIM, 0.8);

        c.bench_function(&format!("segment_softmax_rows/{name}"), |bch| {
            bch.iter(|| {
                let mut g = Graph::with_arena(&store, &arena);
                let s = g.input(arena_copy(&arena, black_box(&scores)));
                let a = g.segment_softmax_rows(s, &segs);
                black_box(g.value(a).data()[0])
            })
        });

        c.bench_function(&format!("segment_weighted_sum/{name}"), |bch| {
            bch.iter(|| {
                let mut g = Graph::with_arena(&store, &arena);
                let s = g.input(arena_copy(&arena, black_box(&scores)));
                let v = g.input(arena_copy(&arena, black_box(&values)));
                let a = g.segment_softmax_rows(s, &segs);
                let pooled = g.segment_weighted_sum(a, v, &segs);
                black_box(g.value(pooled).data()[0])
            })
        });

        // The full segmented attention block, backward included — the
        // per-batch cost the encoder pays during training.
        let ctx = filled(n, 384, 0.5);
        let mut store_p = ParamStore::new(1);
        let w = store_p.param_xavier("w", 384, CODE_DIM);
        let attn = store_p.param_xavier("attn", CODE_DIM, 1);
        c.bench_function(&format!("segment_attention_fwd_bwd/{name}"), |bch| {
            bch.iter(|| {
                let mut g = Graph::with_arena(&store_p, &arena);
                let x = g.input(arena_copy(&arena, black_box(&ctx)));
                let (wn, an) = (g.param(w), g.param(attn));
                let proj = g.segment_matmul(x, wn, &segs);
                let cc = g.tanh(proj);
                let scores = g.segment_matmul(cc, an, &segs);
                let alpha = g.segment_softmax_rows(scores, &segs);
                let pooled = g.segment_weighted_sum(alpha, cc, &segs);
                let loss = g.mean_all(pooled);
                g.backward(loss);
                black_box(g.param_grads().len())
            })
        });
    }
}

criterion_group!(
    name = segments;
    config = Criterion::default().sample_size(20);
    targets = bench_segments
);
criterion_main!(segments);
