//! Criterion microbenchmarks for the `nvc-nn` matmul kernels.
//!
//! Sizes span the shapes the hot path actually runs: the code2vec
//! projection (`n_paths × context_width · context_width × code_dim`),
//! the batched policy layers, and the transpose-free backward kernels.
//! Run with:
//!
//! ```text
//! cargo bench -p nv-bench --bench matmul
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nvc_nn::Tensor;

/// Deterministic pseudo-random tensor (no RNG dependency needed here).
fn filled(rows: usize, cols: usize, phase: f32) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| (i as f32 * 0.37 + phase).sin())
            .collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    // Forward shapes: embed projection and batched policy stages
    // (EmbedConfig::paper: context_width 384, code_dim 340; policy 64×64
    // over a 64-row training batch).
    for &(name, m, k, n) in &[
        (
            "matmul/embed_project_60x384_384x340",
            60usize,
            384usize,
            340usize,
        ),
        ("matmul/policy_input_64x340_340x64", 64, 340, 64),
        ("matmul/policy_hidden_64x64_64x64", 64, 64, 64),
        ("matmul/attention_60x340_340x1", 60, 340, 1),
    ] {
        let a = filled(m, k, 0.1);
        let b = filled(k, n, 0.7);
        c.bench_function(name, |bch| bch.iter(|| black_box(&a).matmul(black_box(&b))));
    }

    // Backward shapes: xᵀ·g (weight gradients) and g·wᵀ (input
    // gradients) via the transpose-free kernels.
    let x = filled(60, 384, 0.3);
    let dproj = filled(60, 340, 0.9);
    c.bench_function("matmul_tn/embed_dw_384x60_60x340", |bch| {
        bch.iter(|| black_box(&x).matmul_tn(black_box(&dproj)))
    });
    let g = filled(64, 64, 0.2);
    let w = filled(340, 64, 0.4);
    c.bench_function("matmul_nt/policy_dx_64x64_340x64", |bch| {
        bch.iter(|| black_box(&g).matmul_nt(black_box(&w)))
    });
}

criterion_group!(
    name = matmul;
    config = Criterion::default().sample_size(30);
    targets = bench_matmul
);
criterion_main!(matmul);
