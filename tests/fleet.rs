//! Integration tests for the fleet tier: a discovery registry plus
//! several hub nodes under concurrent client fire, with node kills,
//! restarts from periodic cache checkpoints, warm-join gossip, registry
//! outage, and hot-swap reloads — asserting the fleet contract: zero
//! wrong-version decisions, failover instead of failures, and bounded
//! decision loss on crash.

use std::sync::Arc;
use std::time::{Duration, Instant};

use neurovectorizer::{
    AnnounceConfig, ContentStore, FleetClient, FleetConfig, Hub, HubConfig, ModelSpec,
    NeuroVectorizer, NvConfig, ServeConfig, VectorizeEnv,
};
use nvc_datasets::generator;
use nvc_fleet::{serve_registry, RegistryService};
use nvc_hub::server::{serve_tcp, HubHandle};
use nvc_hub::{spawn_announcer, Announcer};

fn trained_checkpoint(seed: u64) -> String {
    let cfg = NvConfig::fast().with_seed(seed);
    let mut env = VectorizeEnv::new(
        generator::generate(seed, 12),
        cfg.target.clone(),
        &cfg.embed,
    );
    let mut nv = NeuroVectorizer::new(cfg);
    nv.train(&mut env, 2);
    nv.checkpoint()
}

fn restored(ckpt: &str) -> NeuroVectorizer {
    let mut nv = NeuroVectorizer::new(NvConfig::fast().with_seed(987));
    nv.restore(ckpt).expect("restore checkpoint");
    nv
}

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("nvc-fleet-it-{tag}-{}", std::process::id()))
        .to_string_lossy()
        .to_string()
}

/// A pool of structurally distinct sources (the decision-cache key
/// hashes code2vec path contexts, so the kernels must differ in shape,
/// not just constants — the generator guarantees that).
fn sources(n: usize) -> Vec<String> {
    generator::generate(91, n)
        .into_iter()
        .map(|k| k.source)
        .collect()
}

struct FleetNode {
    handle: HubHandle,
    announcer: Announcer,
}

fn start_node(
    name: &str,
    ckpt: &str,
    registry_addr: &str,
    cache_path: Option<String>,
    checkpoint_secs: u64,
) -> FleetNode {
    let nv = restored(ckpt);
    let hash = nv.checkpoint_hash();
    let mut hub_cfg = HubConfig::default()
        .with_listen("127.0.0.1:0")
        .with_cache_checkpoint_secs(checkpoint_secs);
    if let Some(path) = cache_path {
        hub_cfg = hub_cfg.with_cache_path(path);
    }
    let hub = Hub::new(hub_cfg, ServeConfig::default().with_workers(1))
        .with_shared_store(Arc::new(ContentStore::default()));
    hub.register(ModelSpec {
        name: "prod".to_string(),
        weight: 1,
        checkpoint_hash: hash,
        model: Arc::new(nv),
    })
    .unwrap();
    hub.restore_cache().unwrap();
    let handle = serve_tcp(Arc::new(hub)).expect("bind loopback");
    let announcer = spawn_announcer(
        Arc::clone(handle.hub()),
        AnnounceConfig::new(registry_addr, name, handle.addr().to_string()).with_ttl_ms(600),
    );
    FleetNode { handle, announcer }
}

fn wait_for_nodes(client: &FleetClient, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.invalidate_resolution();
        if client.current_nodes().map(|n| n.len()).unwrap_or(0) >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never reached {want} nodes"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// The headline resilience scenario: 3 nodes under concurrent client
/// fire, one killed mid-fire without a clean shutdown. Every request
/// must still succeed (failover), every accepted decision must carry
/// the expected checkpoint hash (zero wrong-version), and the killed
/// node's periodic cache checkpoint must bound its decision loss — a
/// restart from that file serves pre-crash decisions as cache hits.
#[test]
fn kill_and_restart_under_concurrent_fire() {
    let ckpt = trained_checkpoint(5);
    let expected_hash = restored(&ckpt).checkpoint_hash();
    let registry = serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").unwrap();
    let reg_addr = registry.addr().to_string();

    let victim_cache = tmp_path("victim");
    let _ = std::fs::remove_file(&victim_cache);
    let victim = start_node("victim", &ckpt, &reg_addr, Some(victim_cache.clone()), 1);
    let survivor_a = start_node("sa", &ckpt, &reg_addr, None, 0);
    let survivor_b = start_node("sb", &ckpt, &reg_addr, None, 0);

    let client = Arc::new(FleetClient::new(
        FleetConfig::new(&reg_addr)
            .with_model("prod")
            .with_retries(3)
            .with_backoff_ms(10)
            .with_resolve_ttl_ms(200),
    ));
    wait_for_nodes(&client, 3);

    let srcs = Arc::new(sources(12));
    // Pre-fire pass: warm the fleet and the victim's cache, then wait
    // for the victim's periodic checkpointer to capture it.
    for s in srcs.iter() {
        let resp = client.vectorize(s).expect("warm pass");
        assert_eq!(resp.checkpoint_hash, expected_hash);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while !std::fs::metadata(&victim_cache)
        .map(|m| m.len() > 0)
        .unwrap_or(false)
    {
        assert!(Instant::now() < deadline, "victim checkpointer never fired");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Concurrent fire while the victim dies mid-flight.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let fire: Vec<_> = (0..3)
        .map(|t| {
            let client = Arc::clone(&client);
            let srcs = Arc::clone(&srcs);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut done = 0usize;
                for pass in 0.. {
                    for s in srcs.iter() {
                        let resp = client
                            .vectorize(s)
                            .unwrap_or_else(|e| panic!("thread {t} pass {pass}: {e}"));
                        assert_eq!(
                            resp.checkpoint_hash, expected_hash,
                            "wrong-version decision accepted"
                        );
                        done += 1;
                    }
                    if stop.load(std::sync::atomic::Ordering::Acquire) && pass >= 2 {
                        return done;
                    }
                }
                done
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    victim.handle.abort(); // crash: no final persist
    victim.announcer.stop();
    std::thread::sleep(Duration::from_millis(700)); // fire through TTL expiry
    stop.store(true, std::sync::atomic::Ordering::Release);
    let total: usize = fire.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(
        total >= 72,
        "fire must cover every source repeatedly: {total}"
    );

    // The dead node triggered failovers but zero wrong versions.
    let stats = client.stats();
    assert_eq!(stats.requests, stats.ok, "every request must succeed");
    assert!(
        stats.failovers > 0,
        "the kill must have been felt: {stats:?}"
    );
    assert_eq!(stats.version_mismatches, 0);

    // Bounded loss: the periodic checkpoint survived the crash and a
    // restart serves pre-crash decisions as hits.
    let reborn = start_node("victim2", &ckpt, &reg_addr, Some(victim_cache.clone()), 0);
    let m = reborn.handle.hub().registry().get("prod").unwrap();
    assert!(
        m.handle.metrics().entries_restored > 0,
        "restart must restore the periodic checkpoint"
    );

    reborn.announcer.stop();
    survivor_a.announcer.stop();
    survivor_b.announcer.stop();
    registry.shutdown();
    let _ = std::fs::remove_file(&victim_cache);
}

/// Warm-join gossip parity: a joining node pulls the warm peer's cache
/// image and must answer the same sources bitwise-identically, entirely
/// from cache, without its model computing anything new.
#[test]
fn gossip_transfer_is_bitwise_equal() {
    let ckpt = trained_checkpoint(11);
    let registry = serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").unwrap();
    let reg_addr = registry.addr().to_string();
    let warm = start_node("warm", &ckpt, &reg_addr, None, 0);

    let srcs = sources(8);
    let client = FleetClient::new(FleetConfig::new(&reg_addr).with_model("prod"));
    wait_for_nodes(&client, 1);
    let warm_answers: Vec<String> = srcs
        .iter()
        .map(|s| client.vectorize(s).unwrap().source)
        .collect();

    // Join a fresh node and gossip-transfer the warm cache into it.
    let joiner = start_node("joiner", &ckpt, &reg_addr, None, 0);
    let n = joiner
        .handle
        .hub()
        .warm_from_peers(&[warm.handle.addr().to_string()])
        .expect("warm join");
    assert!(n >= srcs.len(), "transfer must carry the warm entries: {n}");

    // Kill the warm node so only the joiner can answer.
    warm.handle.shutdown();
    warm.announcer.stop();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.invalidate_resolution();
        let nodes = client.current_nodes().unwrap_or_default();
        if nodes.len() == 1 && nodes[0].node == "joiner" {
            break;
        }
        assert!(Instant::now() < deadline, "warm node never expired");
        std::thread::sleep(Duration::from_millis(50));
    }

    let m = joiner.handle.hub().registry().get("prod").unwrap();
    let batches_before = m.handle.metrics().batches;
    for (s, expected) in srcs.iter().zip(&warm_answers) {
        let resp = client.vectorize(s).expect("joiner must answer");
        assert_eq!(resp.node, "joiner");
        assert_eq!(
            &resp.source, expected,
            "gossip-transferred decisions must be bitwise-equal"
        );
    }
    assert_eq!(
        m.handle.metrics().batches,
        batches_before,
        "every transferred decision must serve from cache, not the model"
    );

    joiner.announcer.stop();
    registry.shutdown();
}

/// Registry outage: clients keep serving from the last-known-good node
/// set (stale-while-down) instead of failing.
#[test]
fn registry_outage_serves_from_stale_node_set() {
    let ckpt = trained_checkpoint(23);
    let registry = serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").unwrap();
    let reg_addr = registry.addr().to_string();
    let node = start_node("solo", &ckpt, &reg_addr, None, 0);

    let client = FleetClient::new(
        FleetConfig::new(&reg_addr)
            .with_model("prod")
            .with_resolve_ttl_ms(50),
    );
    wait_for_nodes(&client, 1);
    let srcs = sources(4);
    client.vectorize(&srcs[0]).expect("pre-outage request");

    node.announcer.stop(); // stop heartbeats before killing the registry
    registry.shutdown();
    std::thread::sleep(Duration::from_millis(120)); // let the resolution go stale

    for s in &srcs {
        client
            .vectorize(s)
            .expect("stale node set must keep serving");
    }
    assert!(
        client.stats().registry_failovers > 0,
        "the outage must be visible in stats: {:?}",
        client.stats()
    );
    node.handle.shutdown();
}

/// Hot-swap reload: the node's announcement picks up the new checkpoint
/// hash within a heartbeat, and the client accepts the new version via
/// its re-resolve path — never serving a hash the registry doesn't
/// (eventually) confirm.
#[test]
fn reload_propagates_version_without_mismatched_decisions() {
    let ckpt_a = trained_checkpoint(31);
    let ckpt_b = trained_checkpoint(37);
    let hash_a = restored(&ckpt_a).checkpoint_hash();
    let hash_b = restored(&ckpt_b).checkpoint_hash();
    assert_ne!(hash_a, hash_b);
    let ckpt_b_path = tmp_path("reload-b.ckpt");
    std::fs::write(&ckpt_b_path, &ckpt_b).unwrap();

    let registry = serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").unwrap();
    let reg_addr = registry.addr().to_string();

    // A node with a loader, announced with a short TTL.
    let nv = restored(&ckpt_a);
    let cfg = NvConfig::fast();
    let hub = Hub::new(
        HubConfig::default().with_listen("127.0.0.1:0"),
        ServeConfig::default().with_workers(1),
    )
    .with_loader(NeuroVectorizer::hub_loader(cfg))
    .with_shared_store(Arc::new(ContentStore::default()));
    hub.register(ModelSpec {
        name: "prod".to_string(),
        weight: 1,
        checkpoint_hash: hash_a,
        model: Arc::new(nv),
    })
    .unwrap();
    let handle = serve_tcp(Arc::new(hub)).unwrap();
    let announcer = spawn_announcer(
        Arc::clone(handle.hub()),
        AnnounceConfig::new(&reg_addr, "n1", handle.addr().to_string()).with_ttl_ms(400),
    );

    let client = FleetClient::new(
        FleetConfig::new(&reg_addr)
            .with_model("prod")
            .with_resolve_ttl_ms(100),
    );
    wait_for_nodes(&client, 1);
    let srcs = sources(3);
    assert_eq!(client.vectorize(&srcs[0]).unwrap().checkpoint_hash, hash_a);

    handle.hub().reload("prod", &ckpt_b_path, None).unwrap();
    // In the window between the swap and the next heartbeat the client
    // may *reject* responses (the stamp isn't registry-confirmed yet) —
    // that's the contract: error out rather than accept an unconfirmed
    // version. It must never return hash_a labelled as anything else,
    // and once the heartbeat lands it must serve hash_b.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.vectorize(&srcs[1]) {
            Ok(resp) => {
                assert!(
                    resp.checkpoint_hash == hash_a || resp.checkpoint_hash == hash_b,
                    "impossible hash {:016x}",
                    resp.checkpoint_hash
                );
                if resp.checkpoint_hash == hash_b {
                    break;
                }
            }
            Err(_) => {} // rejected unconfirmed version; retry
        }
        assert!(Instant::now() < deadline, "new version never served");
        std::thread::sleep(Duration::from_millis(50));
    }

    announcer.stop();
    registry.shutdown();
    let _ = std::fs::remove_file(&ckpt_b_path);
}
