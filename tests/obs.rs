//! End-to-end trace attribution: every served decision must be
//! attributable from the span ring — a trace id set at the request
//! boundary reaches the spans recorded on *other* threads (the batch
//! worker), and a cache hit is distinguishable from a batched forward by
//! span names alone.
//!
//! One `#[test]` on purpose: the trace ring is process-global, so a
//! single test keeps the record stream deterministic.

use neurovectorizer::{NeuroVectorizer, NvConfig, ServeConfig};
use nvc_obs::{enable_tracing, export_records, next_trace_id, trace_scope, TraceRecord};

const SRC: &str = "float a[1024]; float b[1024];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] + b[i] * 2.0;
    }
}";

fn names_of(records: &[TraceRecord], trace: u64) -> Vec<&'static str> {
    records
        .iter()
        .filter(|r| r.trace == trace)
        .map(|r| r.name)
        .collect()
}

#[test]
fn served_decisions_are_attributable_by_trace_id() {
    enable_tracing();
    let mut cfg = NvConfig::fast();
    cfg.serve = ServeConfig::default().with_workers(1).with_batch_size(1);
    let handle = NeuroVectorizer::new(cfg).serve();

    // Request 1: a cold miss — must travel through the batcher. The
    // explicit outer scope stands in for the hub's per-line trace mint;
    // `request_scope` inside `vectorize` must defer to it (outermost
    // boundary wins), so every span lands under OUR id.
    let miss_trace = next_trace_id();
    {
        let _scope = trace_scope(miss_trace);
        handle.vectorize(SRC).expect("miss request");
    }

    // Request 2: the same source again — a pure cache hit.
    let hit_trace = next_trace_id();
    {
        let _scope = trace_scope(hit_trace);
        handle.vectorize(SRC).expect("hit request");
    }
    handle.shutdown();

    let records = export_records();
    let miss = names_of(&records, miss_trace);
    let hit = names_of(&records, hit_trace);

    // The miss is fully attributable: boundary span, frontend, cache
    // probe, then the batcher's queue-wait + forward — all under the one
    // trace id.
    for name in [
        "request",
        "frontend",
        "cache_lookup",
        "queue_wait",
        "batch_forward",
    ] {
        assert!(
            miss.contains(&name),
            "miss trace {miss_trace} lacks `{name}`: {miss:?}"
        );
    }
    assert!(
        !miss.contains(&"cache_hit"),
        "cold request cannot be a cache hit: {miss:?}"
    );

    // The hit never reaches the batcher and says why it was fast.
    for name in ["request", "cache_lookup", "cache_hit"] {
        assert!(
            hit.contains(&name),
            "hit trace {hit_trace} lacks `{name}`: {hit:?}"
        );
    }
    for name in ["queue_wait", "batch_forward"] {
        assert!(
            !hit.contains(&name),
            "cache hit must not run the model: {hit:?}"
        );
    }

    // Cross-thread inheritance: the batch worker recorded the forward
    // under the request's trace id from a *different* thread than the
    // one that opened the request span.
    let request_thread = records
        .iter()
        .find(|r| r.trace == miss_trace && r.name == "request")
        .expect("request span")
        .thread;
    let forward = records
        .iter()
        .find(|r| r.trace == miss_trace && r.name == "batch_forward")
        .expect("batch_forward span");
    assert_ne!(
        forward.thread, request_thread,
        "batch_forward should run on the worker thread, not the caller's"
    );

    // The export format carries the attribution: one JSON line per span,
    // with the trace id intact.
    let line = forward.to_json_line();
    assert!(
        line.contains(&format!("\"trace\":{miss_trace}")),
        "JSON export lost the trace id: {line}"
    );
    assert!(line.contains("\"name\":\"batch_forward\""));
}
