//! Determinism guarantees: every stochastic component is seeded, so the
//! figures regenerate bit-identically (DESIGN.md's reproducibility
//! contract).

use neurovectorizer::experiments::{fig1_dot_product_grid, fig2_bruteforce_suite};
use neurovectorizer::{NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::{generator, suite};
use nvc_machine::TargetConfig;

#[test]
fn generator_streams_are_reproducible() {
    assert_eq!(generator::generate(0, 64), generator::generate(0, 64));
    assert_ne!(generator::generate(0, 64), generator::generate(1, 64));
    // The fixed suite is pinned forever.
    assert_eq!(suite::llvm_suite(), suite::llvm_suite());
}

#[test]
fn environment_rewards_are_reproducible() {
    let cfg = NvConfig::fast();
    let build = || VectorizeEnv::new(generator::generate(9, 12), cfg.target.clone(), &cfg.embed);
    let a = build();
    let b = build();
    assert_eq!(a.contexts().len(), b.contexts().len());
    for i in 0..a.contexts().len() {
        for d in a.space().iter() {
            assert_eq!(a.reward_of_decision(i, d), b.reward_of_decision(i, d));
        }
    }
}

#[test]
fn training_is_reproducible_per_seed() {
    let run = |seed: u64| {
        let cfg = NvConfig::fast().with_seed(seed);
        let mut env = VectorizeEnv::new(generator::generate(3, 12), cfg.target.clone(), &cfg.embed);
        let mut nv = NeuroVectorizer::new(cfg);
        let stats = nv.train(&mut env, 3);
        stats
            .iter()
            .map(|s| (s.reward_mean, s.loss))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21), run(22));
}

#[test]
fn figure_data_is_reproducible() {
    let t = TargetConfig::i7_8559u();
    assert_eq!(fig1_dot_product_grid(&t), fig1_dot_product_grid(&t));
    assert_eq!(fig2_bruteforce_suite(&t), fig2_bruteforce_suite(&t));
}

#[test]
fn inference_is_pure() {
    let cfg = NvConfig::fast().with_seed(33);
    let env = VectorizeEnv::new(generator::generate(8, 8), cfg.target.clone(), &cfg.embed);
    let nv = NeuroVectorizer::new(cfg);
    let space = env.space();
    for ctx in env.contexts() {
        let d1 = nv.decide(&ctx.sample, space);
        let d2 = nv.decide(&ctx.sample, space);
        assert_eq!(d1, d2);
        let e1 = nv.encode(&ctx.sample);
        let e2 = nv.encode(&ctx.sample);
        assert_eq!(e1, e2);
    }
}
