//! Determinism guarantees: every stochastic component is seeded, so the
//! figures regenerate bit-identically (DESIGN.md's reproducibility
//! contract).

use neurovectorizer::experiments::{fig1_dot_product_grid, fig2_bruteforce_suite};
use neurovectorizer::{NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::{generator, suite};
use nvc_machine::TargetConfig;
use nvc_rl::ActionSpaceKind;

/// Serializes every test that constructs a [`NeuroVectorizer`]:
/// construction re-asserts the process-global kernel knobs (threads *and*
/// mode) from its config, and unlike the thread count the kernel mode is
/// not bitwise-neutral — a sibling flipping it mid-run would not be the
/// benign race the threading doc below describes. Poisoning is ignored so
/// one failed test doesn't cascade.
static MODEL_KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock_model_knobs() -> std::sync::MutexGuard<'static, ()> {
    MODEL_KNOBS.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn generator_streams_are_reproducible() {
    assert_eq!(generator::generate(0, 64), generator::generate(0, 64));
    assert_ne!(generator::generate(0, 64), generator::generate(1, 64));
    // The fixed suite is pinned forever.
    assert_eq!(suite::llvm_suite(), suite::llvm_suite());
}

#[test]
fn environment_rewards_are_reproducible() {
    let cfg = NvConfig::fast();
    let build = || VectorizeEnv::new(generator::generate(9, 12), cfg.target.clone(), &cfg.embed);
    let a = build();
    let b = build();
    assert_eq!(a.contexts().len(), b.contexts().len());
    for i in 0..a.contexts().len() {
        for d in a.space().iter() {
            assert_eq!(a.reward_of_decision(i, d), b.reward_of_decision(i, d));
        }
    }
}

#[test]
fn training_is_reproducible_per_seed() {
    let _guard = lock_model_knobs();
    let run = |seed: u64| {
        let cfg = NvConfig::fast().with_seed(seed);
        let mut env = VectorizeEnv::new(generator::generate(3, 12), cfg.target.clone(), &cfg.embed);
        let mut nv = NeuroVectorizer::new(cfg);
        let stats = nv.train(&mut env, 3);
        stats
            .iter()
            .map(|s| (s.reward_mean, s.loss))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21), run(22));
}

#[test]
fn figure_data_is_reproducible() {
    let t = TargetConfig::i7_8559u();
    assert_eq!(fig1_dot_product_grid(&t), fig1_dot_product_grid(&t));
    assert_eq!(fig2_bruteforce_suite(&t), fig2_bruteforce_suite(&t));
}

/// The kernel-threading determinism bar, end to end: a full train ➝
/// checkpoint ➝ serve run must be **bitwise**-equal across every
/// `{matmul_threads, collect_threads}` combination drawn from {1, 3, 8},
/// for all three action spaces. Equal checkpoints mean every f32 of
/// every weight matches after training through the threaded kernels;
/// equal served decisions mean the batched serving path (whose flush
/// matmuls also shard) agrees too.
///
/// The matmul thread count is a process-global knob, so sibling tests in
/// this binary constructing their own models can reset it mid-run; that
/// race is exactly what the parity contract makes benign (and what this
/// assertion would catch if it weren't). Deterministic
/// every-thread-count kernel coverage lives in `tests/kernel_parity.rs`;
/// here the work floor is dropped so whatever count is live really
/// shards even at fast-config sizes.
#[test]
fn train_then_serve_is_bitwise_equal_across_thread_matrix() {
    let _guard = lock_model_knobs();
    nvc_nn::kernels::set_matmul_grain(1);
    for kind in [
        ActionSpaceKind::Discrete,
        ActionSpaceKind::Continuous1D,
        ActionSpaceKind::Continuous2D,
    ] {
        let run = |matmul_threads: usize, collect_threads: usize| {
            // Pin strict explicitly: the bitwise guarantee is strict
            // mode's contract, and must hold even when this binary runs
            // under the `NVC_KERNEL_MODE=fast` CI leg (fast mode's
            // k-split shard count varies with the thread knob by
            // design). Fast mode's own bar — decision equivalence — is
            // the kernel-mode axis test below.
            let mut cfg = NvConfig::fast()
                .with_seed(19)
                .with_matmul_threads(matmul_threads)
                .with_kernel_mode(nvc_nn::KernelMode::Strict);
            cfg.ppo.collect_threads = collect_threads;
            cfg.ppo.action_space = kind;
            cfg.ppo.train_batch = 24;
            cfg.ppo.minibatch = 8;
            cfg.ppo.epochs = 2;
            let mut env =
                VectorizeEnv::new(generator::generate(7, 6), cfg.target.clone(), &cfg.embed);
            let mut nv = NeuroVectorizer::new(cfg);
            let stats: Vec<(u64, u64)> = nv
                .train(&mut env, 2)
                .iter()
                .map(|s| (s.reward_mean.to_bits(), s.loss.to_bits()))
                .collect();
            let checkpoint = nv.checkpoint();
            let samples: Vec<_> = env.contexts().iter().map(|c| c.sample.clone()).collect();
            // Re-assert the knob for the serve leg in case a sibling
            // test reset the global mid-train (see the doc above).
            nvc_nn::kernels::set_matmul_threads(matmul_threads);
            let handle = nv.serve();
            let decisions: Vec<(usize, usize)> = samples
                .iter()
                .map(|s| handle.decide_sample(s).expect("serve decision").0)
                .collect();
            handle.shutdown();
            (stats, checkpoint, decisions)
        };

        let baseline = run(1, 1);
        for (mt, ct) in [(3, 1), (8, 1), (1, 3), (3, 3), (1, 8), (8, 8)] {
            assert_eq!(
                run(mt, ct),
                baseline,
                "train-then-serve diverged for {kind:?} at matmul_threads={mt}, collect_threads={ct}"
            );
        }
    }
    nvc_nn::kernels::set_matmul_threads(nvc_nn::kernels::default_matmul_threads());
    nvc_nn::kernels::set_matmul_grain(nvc_nn::kernels::DEFAULT_MATMUL_GRAIN);
    nvc_nn::kernels::set_kernel_mode(nvc_nn::kernels::default_kernel_mode());
}

/// The kernel-mode axis of the same train ➝ checkpoint ➝ serve matrix:
/// strict mode is the bitwise anchor (serving the same checkpoint twice
/// reproduces identical decisions), and restoring that checkpoint into a
/// **fast**-mode server must reproduce the *decisions* exactly. Fast
/// kernels reassociate reductions, so intermediate f32s may differ in
/// low bits — decision equivalence, not bit equality, is fast mode's
/// contract (the ε bound itself is `tests/fast_parity.rs`).
#[test]
fn kernel_mode_fast_serving_is_decision_identical_to_strict() {
    let _guard = lock_model_knobs();
    nvc_nn::kernels::set_matmul_grain(1);
    let mut cfg = NvConfig::fast()
        .with_seed(19)
        .with_kernel_mode(nvc_nn::KernelMode::Strict);
    cfg.ppo.train_batch = 24;
    cfg.ppo.minibatch = 8;
    cfg.ppo.epochs = 2;
    let mut env = VectorizeEnv::new(generator::generate(7, 6), cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg.clone());
    nv.train(&mut env, 2);
    let checkpoint = nv.checkpoint();
    let samples: Vec<_> = env.contexts().iter().map(|c| c.sample.clone()).collect();

    let serve_decisions = |mode: nvc_nn::KernelMode| {
        let mut m = NeuroVectorizer::new(cfg.clone().with_kernel_mode(mode));
        m.restore(&checkpoint).expect("restore");
        let handle = m.serve();
        let decisions: Vec<(usize, usize)> = samples
            .iter()
            .map(|s| handle.decide_sample(s).expect("serve decision").0)
            .collect();
        handle.shutdown();
        decisions
    };

    let strict = serve_decisions(nvc_nn::KernelMode::Strict);
    assert_eq!(
        serve_decisions(nvc_nn::KernelMode::Strict),
        strict,
        "strict serving must be reproducible"
    );
    assert_eq!(
        serve_decisions(nvc_nn::KernelMode::Fast),
        strict,
        "fast-mode serving changed a decision"
    );
    nvc_nn::kernels::set_matmul_grain(nvc_nn::kernels::DEFAULT_MATMUL_GRAIN);
    nvc_nn::kernels::set_kernel_mode(nvc_nn::kernels::default_kernel_mode());
}

/// Observability must be a pure observer: the same seeded train ➝
/// checkpoint ➝ serve run with span tracing *and* kernel profiling
/// enabled is bitwise-equal to the run with both off. Tracing writes to
/// a lock-free ring and profiling bumps relaxed atomics — neither may
/// touch an f32. (Timing fields of `IterStats` are excluded: wall-clock
/// is the one thing observability is allowed to observe.)
#[test]
fn observability_on_and_off_are_bitwise_equal() {
    let _guard = lock_model_knobs();
    let run = || {
        let mut cfg = NvConfig::fast().with_seed(29);
        cfg.ppo.train_batch = 24;
        cfg.ppo.minibatch = 8;
        cfg.ppo.epochs = 2;
        let mut env = VectorizeEnv::new(generator::generate(5, 6), cfg.target.clone(), &cfg.embed);
        let mut nv = NeuroVectorizer::new(cfg);
        let stats: Vec<(u64, u64)> = nv
            .train(&mut env, 2)
            .iter()
            .map(|s| (s.reward_mean.to_bits(), s.loss.to_bits()))
            .collect();
        let checkpoint = nv.checkpoint();
        let samples: Vec<_> = env.contexts().iter().map(|c| c.sample.clone()).collect();
        let handle = nv.serve();
        let decisions: Vec<(usize, usize)> = samples
            .iter()
            .map(|s| handle.decide_sample(s).expect("serve decision").0)
            .collect();
        handle.shutdown();
        (stats, checkpoint, decisions)
    };

    let off = run();
    nvc_obs::enable_tracing();
    nvc_obs::set_ops_enabled(true);
    let on = run();
    nvc_obs::disable_tracing();
    nvc_obs::set_ops_enabled(false);
    nvc_obs::reset_ops();
    assert_eq!(on, off, "observability changed a bit of the run");
}

#[test]
fn inference_is_pure() {
    let _guard = lock_model_knobs();
    let cfg = NvConfig::fast().with_seed(33);
    let env = VectorizeEnv::new(generator::generate(8, 8), cfg.target.clone(), &cfg.embed);
    let nv = NeuroVectorizer::new(cfg);
    let space = env.space();
    for ctx in env.contexts() {
        let d1 = nv.decide(&ctx.sample, space);
        let d2 = nv.decide(&ctx.sample, space);
        assert_eq!(d1, d2);
        let e1 = nv.encode(&ctx.sample);
        let e2 = nv.encode(&ctx.sample);
        assert_eq!(e1, e2);
    }
}
