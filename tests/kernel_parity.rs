//! Kernel-parity tier: the threaded (1/2/3/8 workers) and SIMD-unrolled
//! matmul kernels must be **bitwise**-identical to their textbook
//! spellings — values and gradients — over arbitrary shapes (including
//! `m = 0`, `k = 0`, `n = 1` and widths straddling the 8-wide unroll
//! blocks) and over hostile payloads (±0, quiet/signalling NaNs, ±∞,
//! subnormals), in the `serialize` proptest style: NaNs compare by bits.
//!
//! The work floor is pinned to 1 for the whole binary so the requested
//! thread counts really shard even on deliberately tiny shapes. The
//! thread knob is process-global, so tests in this binary may race on
//! it — harmless by construction, since every value under test is
//! asserted to produce the same bits.

use nvc_nn::{kernels, Graph, ParamStore, Segments, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const THREAD_MATRIX: [usize; 4] = [1, 2, 3, 8];

/// Forces real sharding regardless of shape size and pins the strict
/// kernel contract — this tier *is* the bitwise guarantee, so it must
/// hold even when the binary runs under `NVC_KERNEL_MODE=fast`
/// (idempotent; never restored inside this binary so concurrent tests
/// can't undo it).
fn force_sharding() {
    kernels::set_matmul_grain(1);
    kernels::set_kernel_mode(kernels::KernelMode::Strict);
}

/// Bit patterns spanning every special f32 class (mirrors the
/// `serialize` roundtrip proptest): ±0, quiet NaN with payload,
/// signalling NaN, ±∞, subnormals.
fn special_f32(class: u64, bits: u32) -> f32 {
    f32::from_bits(match class % 7 {
        0 => 0x0000_0000,
        1 => 0x8000_0000,
        2 => 0x7FC0_0001,
        3 => 0x7F80_0001,
        4 => 0x7F80_0000 | (bits & 0x8000_0000),
        5 => bits & 0x007F_FFFF | 1,
        _ => 0x0000_0001,
    })
}

/// A tensor of mostly ordinary values with ~25% special payloads mixed
/// in, so every kernel path sees NaN/∞/subnormal arithmetic.
fn wild_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                if rng.gen_range(0..4usize) == 0 {
                    special_f32(rng.gen_range(0..7u64), rng.gen_range(0..u32::MAX))
                } else {
                    rng.gen_range(-2.0..2.0)
                }
            })
            .collect(),
    )
}

fn finite_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Bit view: the comparison NaN payloads survive.
fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// Textbook i-k-j matmul — the parity reference. Ascending-`k`
/// accumulation per output element, exactly the order the tiled,
/// unrolled, and threaded kernels all preserve.
fn matmul_textbook(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows());
    let mut out = Tensor::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            for j in 0..b.cols() {
                out[(i, j)] += a[(i, k)] * b[(k, j)];
            }
        }
    }
    out
}

/// Deployed matmul/tn/nt vs their textbook spellings at one thread
/// count, bit for bit.
fn check_kernel_family(m: usize, k: usize, n: usize, seed: u64, threads: usize) {
    kernels::set_matmul_threads(threads);
    let ctx = format!("m={m} k={k} n={n} seed={seed} threads={threads}");

    // matmul: m×k · k×n.
    let a = wild_tensor(m, k, seed);
    let b = wild_tensor(k, n, seed ^ 0x5DEECE66);
    let want = matmul_textbook(&a, &b);
    assert_eq!(bits(&a.matmul(&b)), bits(&want), "matmul diverged [{ctx}]");
    let mut tiled = Tensor::zeros(m, n);
    a.matmul_accum_into_tiled(&b, &mut tiled);
    assert_eq!(bits(&tiled), bits(&want), "tiled baseline diverged [{ctx}]");

    // matmul_tn: (k×m)ᵀ · k×n — shared leading dim k.
    let at = wild_tensor(k, m, seed ^ 0xA5A5);
    let want_tn = matmul_textbook(&at.transposed(), &b);
    assert_eq!(
        bits(&at.matmul_tn(&b)),
        bits(&want_tn),
        "matmul_tn diverged [{ctx}]"
    );

    // matmul_nt: m×k · (n×k)ᵀ — shared trailing dim k.
    let w = wild_tensor(n, k, seed ^ 0xC3C3);
    let want_nt = matmul_textbook(&a, &w.transposed());
    assert_eq!(
        bits(&a.matmul_nt(&w)),
        bits(&want_nt),
        "matmul_nt diverged [{ctx}]"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes (zero dims and unroll-straddling widths included) ×
    /// hostile payloads × the full thread matrix: every deployed kernel
    /// matches the textbook bits.
    #[test]
    fn prop_threaded_unrolled_kernels_match_textbook_bitwise(
        m in 0usize..12,
        k in 0usize..40,
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        force_sharding();
        for threads in THREAD_MATRIX {
            check_kernel_family(m, k, n, seed, threads);
        }
    }

    /// The fused `Graph::linear` — forward values AND the gradients that
    /// flow back through `matmul_nt` (dx), `matmul_tn` (dW) and the bias
    /// column sum (db) — is bitwise-stable across the thread matrix and
    /// equal to the unfused matmul + broadcast spelling.
    #[test]
    fn prop_linear_values_and_grads_bitwise_across_threads(
        m in 1usize..10,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..10_000,
    ) {
        force_sharding();
        let mut store = ParamStore::new(seed);
        let x_init = finite_tensor(m, k, seed ^ 0x11);
        let w = store.param("w", finite_tensor(k, n, seed ^ 0x22));
        let b = store.param("b", finite_tensor(1, n, seed ^ 0x33));

        let run_fused = || {
            let mut g = Graph::new(&store);
            let x = g.input(x_init.clone());
            let (wn, bn) = (g.param(w), g.param(b));
            let y = g.linear(x, wn, bn);
            let t = g.tanh(y);
            let loss = g.sum_all(t);
            g.backward(loss);
            let grads = g.param_grads();
            (
                bits(g.value(y)),
                bits(g.grad(x).expect("dx")),
                bits(&grads[&w]),
                bits(&grads[&b]),
            )
        };
        let run_unfused = || {
            let mut g = Graph::new(&store);
            let x = g.input(x_init.clone());
            let (wn, bn) = (g.param(w), g.param(b));
            let mm = g.matmul(x, wn);
            let y = g.add_row_broadcast(mm, bn);
            let t = g.tanh(y);
            let loss = g.sum_all(t);
            g.backward(loss);
            let grads = g.param_grads();
            (
                bits(g.value(y)),
                bits(g.grad(x).expect("dx")),
                bits(&grads[&w]),
                bits(&grads[&b]),
            )
        };

        kernels::set_matmul_threads(1);
        let baseline = run_fused();
        for threads in THREAD_MATRIX {
            kernels::set_matmul_threads(threads);
            prop_assert_eq!(&run_fused(), &baseline, "fused diverged at {} threads", threads);
            prop_assert_eq!(&run_unfused(), &baseline, "unfused diverged at {} threads", threads);
        }
    }
}

/// The deliberate edge shapes, spelled out so a proptest sampling miss
/// can never lose them: empty products, single columns, exact unroll
/// multiples and their off-by-ones, and a tile-boundary straddler.
#[test]
fn edge_shapes_match_textbook_at_every_thread_count() {
    force_sharding();
    for &(m, k, n) in &[
        (0usize, 5usize, 3usize), // no output rows
        (4, 0, 3),                // empty reduction
        (3, 7, 1),                // single output column
        (1, 1, 1),
        (2, 3, 8),    // exact unroll width
        (2, 3, 16),   // two unroll blocks
        (5, 9, 7),    // below the unroll width
        (5, 9, 9),    // unroll + 1 tail
        (9, 130, 67), // straddles the 64-wide k/j tiles
    ] {
        for threads in THREAD_MATRIX {
            check_kernel_family(m, k, n, 1234, threads);
        }
    }
}

/// The segment ops (attention softmax + per-segment weighted sum) are
/// sharded on segment boundaries only, so each segment's internal
/// max/exp/sum/divide (resp. ascending-row accumulation) order is
/// untouched and every thread count must yield the serial bits — over
/// hostile payloads too (NaN/∞ propagate identically).
#[test]
fn segment_ops_match_serial_bits_at_every_thread_count() {
    force_sharding();
    let store = ParamStore::new(7);
    let layouts: &[(&[usize], usize)] = &[
        (&[5], 3),                      // one segment: no cuts possible
        (&[3, 0, 5, 1, 8], 7),          // zero-row segment in the middle
        (&[1; 19], 4),                  // many tiny segments, > threads
        (&[0, 0, 6, 2, 0, 9, 1, 4], 1), // single column, empty edges
    ];
    let run = |threads: usize, lens: &[usize], cols: usize, seed: u64| {
        kernels::set_matmul_threads(threads);
        let segs = Segments::from_lens(lens.iter().copied());
        let rows = segs.total_rows();
        let mut g = Graph::new(&store);
        let scores = g.input(wild_tensor(rows, cols, seed));
        let sm = g.segment_softmax_rows(scores, &segs);
        let w = g.input(wild_tensor(rows, 1, seed ^ 0x77));
        let v = g.input(wild_tensor(rows, cols, seed ^ 0x88));
        let ws = g.segment_weighted_sum(w, v, &segs);
        (bits(g.value(sm)), bits(g.value(ws)))
    };
    for (i, &(lens, cols)) in layouts.iter().enumerate() {
        let seed = 4242 + i as u64;
        let serial = run(1, lens, cols, seed);
        for threads in THREAD_MATRIX {
            assert_eq!(
                run(threads, lens, cols, seed),
                serial,
                "segment ops diverged [lens={lens:?} cols={cols} threads={threads}]"
            );
        }
    }
}

/// A panicking shard must propagate out of the deployed kernel rather
/// than hang the product or surface a half-written output as complete
/// (twin of the failure-injection tier's end-to-end version).
#[test]
fn worker_panic_propagates_out_of_matmul() {
    force_sharding();
    kernels::set_matmul_threads(4);
    // 257 rows: far outside every other shape in this binary, so arming
    // the hook cannot perturb concurrently running tests.
    let a = finite_tensor(257, 6, 9);
    let b = finite_tensor(6, 5, 10);
    let want = matmul_textbook(&a, &b);
    kernels::inject_worker_panic(100, 257);
    let outcome = std::panic::catch_unwind(|| a.matmul(&b));
    kernels::clear_worker_panic();
    assert!(outcome.is_err(), "injected worker panic must propagate");
    // The kernel family still computes clean bits afterwards.
    assert_eq!(bits(&a.matmul(&b)), bits(&want));
}
