//! Fast-kernel ε-parity tier: the `KernelMode::Fast` kernels (fused-FMA
//! accumulators, reduction-dimension `k`-split sharding, single-pass
//! online softmax) reassociate floating-point reductions, so they are
//! *not* held to the strict tier's bitwise bar. Their contract, gated
//! here, is:
//!
//! * **ε-parity** — every finite output is within a relative bound of the
//!   strict kernel's answer, over random shapes *and* hostile payloads,
//!   at every thread count in the matrix;
//! * **special-value identity** — NaN/±∞ payloads propagate exactly as
//!   strict propagates them (same NaN-ness per element; non-finite
//!   outputs bit-identical);
//! * **driver identity** — the persistent pool and the scoped
//!   `NVC_MATMUL_POOL=0` fallback run the identical fast shard list
//!   (including `k`-split windows) and produce the same bits;
//! * **decision equivalence** — serving the full fixed corpus (the
//!   12-loop LLVM suite plus polybench- and mibench-lite) in fast mode
//!   yields exactly the strict decisions.
//!
//! The kernel mode is a process-global knob and fast mode is *not*
//! result-neutral, so every test here serializes on one mutex.

use neurovectorizer::{NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::{mibench, polybench, suite};
use nvc_nn::{kernels, Graph, KernelMode, ParamStore, Segments, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const THREAD_MATRIX: [usize; 4] = [1, 2, 3, 8];

/// Relative ε for fast-vs-strict parity. Fast mode reorders at most
/// `kd`-term f32 sums (8-wide lanes, `k`-split windows, FMA contraction);
/// 1e-4 of the accumulated magnitude is orders of magnitude above any
/// reassociation drift at the shapes under test while still far below
/// anything that could flip a decision.
const REL_EPS: f32 = 1e-4;
const ABS_EPS: f32 = 1e-6;

static MODE_KNOB: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock_mode() -> std::sync::MutexGuard<'static, ()> {
    MODE_KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

fn restore_defaults() {
    kernels::set_kernel_mode(kernels::default_kernel_mode());
    kernels::set_matmul_threads(kernels::default_matmul_threads());
    kernels::set_matmul_grain(kernels::DEFAULT_MATMUL_GRAIN);
}

/// Bit patterns spanning every special f32 class (same generator as the
/// strict parity tier): ±0, quiet NaN with payload, signalling NaN, ±∞,
/// subnormals.
fn special_f32(class: u64, bits: u32) -> f32 {
    f32::from_bits(match class % 7 {
        0 => 0x0000_0000,
        1 => 0x8000_0000,
        2 => 0x7FC0_0001,
        3 => 0x7F80_0001,
        4 => 0x7F80_0000 | (bits & 0x8000_0000),
        5 => bits & 0x007F_FFFF | 1,
        _ => 0x0000_0001,
    })
}

/// Mostly ordinary values with ~25% special payloads mixed in.
fn wild_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                if rng.gen_range(0..4usize) == 0 {
                    special_f32(rng.gen_range(0..7u64), rng.gen_range(0..u32::MAX))
                } else {
                    rng.gen_range(-2.0..2.0)
                }
            })
            .collect(),
    )
}

fn finite_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Σ_k |a_ik|·|b_kj| — the accumulated magnitude each output element saw,
/// the natural scale for a relative reassociation bound.
fn abs_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            for j in 0..b.cols() {
                out[(i, j)] += a[(i, k)].abs() * b[(k, j)].abs();
            }
        }
    }
    out
}

/// The ε-parity + special-value-identity assertion, element by element.
fn assert_eps_parity(fast: &[f32], strict: &[f32], scale: impl Fn(usize) -> f32, ctx: &str) {
    assert_eq!(fast.len(), strict.len(), "shape diverged [{ctx}]");
    for (i, (&f, &s)) in fast.iter().zip(strict.iter()).enumerate() {
        assert_eq!(
            f.is_nan(),
            s.is_nan(),
            "NaN-ness diverged at {i}: fast={f} strict={s} [{ctx}]"
        );
        if s.is_nan() {
            continue;
        }
        if !s.is_finite() || !f.is_finite() {
            assert_eq!(
                f.to_bits(),
                s.to_bits(),
                "non-finite values must propagate identically at {i}: fast={f} strict={s} [{ctx}]"
            );
            continue;
        }
        let tol = REL_EPS * scale(i) + ABS_EPS;
        assert!(
            (f - s).abs() <= tol,
            "ε-parity violated at {i}: fast={f} strict={s} tol={tol} [{ctx}]"
        );
    }
}

/// Fast vs strict for the whole deployed matmul family at one thread
/// count, over hostile payloads. Also pins fast-mode run-to-run
/// determinism (same knobs ⇒ same bits).
fn check_family_eps(m: usize, k: usize, n: usize, seed: u64, threads: usize) {
    kernels::set_matmul_threads(threads);
    let ctx = format!("m={m} k={k} n={n} seed={seed} threads={threads}");

    let a = wild_tensor(m, k, seed);
    let b = wild_tensor(k, n, seed ^ 0x5DEECE66);
    let at = wild_tensor(k, m, seed ^ 0xA5A5);
    let w = wild_tensor(n, k, seed ^ 0xC3C3);

    kernels::set_kernel_mode(KernelMode::Strict);
    let (s_mm, s_tn, s_nt) = (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&w));
    kernels::set_kernel_mode(KernelMode::Fast);
    let (f_mm, f_tn, f_nt) = (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&w));
    assert_eq!(
        f_mm.data()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u32>>(),
        a.matmul(&b)
            .data()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u32>>(),
        "fast matmul must be run-to-run deterministic [{ctx}]"
    );

    let mm_scale = abs_matmul(&a, &b);
    let tn_scale = abs_matmul(&at.transposed(), &b);
    let nt_scale = abs_matmul(&a, &w.transposed());
    assert_eps_parity(
        f_mm.data(),
        s_mm.data(),
        |i| mm_scale.data()[i],
        &format!("matmul {ctx}"),
    );
    assert_eps_parity(
        f_tn.data(),
        s_tn.data(),
        |i| tn_scale.data()[i],
        &format!("matmul_tn {ctx}"),
    );
    assert_eps_parity(
        f_nt.data(),
        s_nt.data(),
        |i| nt_scale.data()[i],
        &format!("matmul_nt {ctx}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes × hostile payloads × the full thread matrix:
    /// every fast kernel is ε-close to strict with identical
    /// special-value propagation. Small-`m` shapes with the work floor
    /// dropped make the `k`-split scheduler engage at the higher thread
    /// counts, so both fast sharding geometries are inside the net.
    #[test]
    fn prop_fast_kernels_are_eps_close_to_strict(
        m in 0usize..12,
        k in 0usize..40,
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let _guard = lock_mode();
        kernels::set_matmul_grain(1);
        for threads in THREAD_MATRIX {
            check_family_eps(m, k, n, seed, threads);
        }
        restore_defaults();
    }
}

/// The tall-thin policy shape from the paper's network (a handful of
/// output rows over a 340-wide reduction) — the shape `k`-splitting
/// exists for — spelled out so proptest sampling can never lose it.
#[test]
fn policy_shape_k_split_is_eps_close_at_every_thread_count() {
    let _guard = lock_mode();
    kernels::set_matmul_grain(1);
    for &(m, k, n) in &[(2usize, 340usize, 64usize), (1, 340, 7), (3, 256, 24)] {
        for threads in THREAD_MATRIX {
            check_family_eps(m, k, n, 4242, threads);
        }
    }
    restore_defaults();
}

/// Fast mode under the persistent pool vs the scoped
/// `NVC_MATMUL_POOL=0` fallback: both drivers execute the identical
/// shard list — row shards *and* `k`-split windows — so their outputs
/// must match bit for bit, not just ε-close.
#[test]
fn fast_pool_and_scoped_drivers_are_bitwise_identical() {
    let _guard = lock_mode();
    kernels::set_matmul_grain(1);
    kernels::set_matmul_threads(8);
    kernels::set_kernel_mode(KernelMode::Fast);
    // (2, 340, 64): k-split engages (8 funded workers > 2 rows).
    // (64, 40, 24): plain row sharding.
    for &(m, k, n) in &[(2usize, 340usize, 64usize), (64, 40, 24)] {
        let a = wild_tensor(m, k, 99);
        let b = wild_tensor(k, n, 98);
        let at = wild_tensor(k, m, 97);
        let w = wild_tensor(n, k, 96);
        let run = |pool: bool| {
            kernels::set_matmul_pool(pool);
            [a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&w)]
                .iter()
                .flat_map(|t| t.data().iter().map(|x| x.to_bits()))
                .collect::<Vec<u32>>()
        };
        assert_eq!(
            run(true),
            run(false),
            "pool and scoped drivers diverged in fast mode [m={m} k={k} n={n}]"
        );
    }
    kernels::set_matmul_pool(std::env::var("NVC_MATMUL_POOL").map_or(true, |v| v.trim() != "0"));
    restore_defaults();
}

/// The fused fast segment ops (online softmax, `mul_add` weighted sum)
/// vs their strict three-pass / plain spellings, over hostile payloads
/// and the layouts the strict tier pins — ε-close, NaN-ness identical.
#[test]
fn fast_segment_ops_are_eps_close_to_strict() {
    let _guard = lock_mode();
    kernels::set_matmul_grain(1);
    let store = ParamStore::new(7);
    let layouts: &[(&[usize], usize)] = &[
        (&[5], 3),
        (&[3, 0, 5, 1, 8], 7),
        (&[1; 19], 4),
        (&[0, 0, 6, 2, 0, 9, 1, 4], 1),
    ];
    for (li, &(lens, cols)) in layouts.iter().enumerate() {
        let seed = 777 + li as u64;
        let segs = Segments::from_lens(lens.iter().copied());
        let rows = segs.total_rows();
        let scores = wild_tensor(rows, cols, seed);
        let wts = wild_tensor(rows, 1, seed ^ 0x77);
        let vals = wild_tensor(rows, cols, seed ^ 0x88);
        let run = |mode: KernelMode, threads: usize| {
            kernels::set_kernel_mode(mode);
            kernels::set_matmul_threads(threads);
            let mut g = Graph::new(&store);
            let sc = g.input(scores.clone());
            let sm = g.segment_softmax_rows(sc, &segs);
            let wn = g.input(wts.clone());
            let vn = g.input(vals.clone());
            let ws = g.segment_weighted_sum(wn, vn, &segs);
            (g.value(sm).data().to_vec(), g.value(ws).data().to_vec())
        };
        let (s_sm, s_ws) = run(KernelMode::Strict, 1);
        // Weighted-sum magnitude scale: Σ_r |w_r|·|v_rd| per segment.
        let mut ws_scale = vec![0.0f32; segs.len() * cols.max(1)];
        for (s, (r0, r1)) in (0..segs.len()).map(|s| (s, segs.bounds(s))) {
            for r in r0..r1 {
                for d in 0..cols {
                    ws_scale[s * cols + d] += wts[(r, 0)].abs() * vals[(r, d)].abs();
                }
            }
        }
        for threads in THREAD_MATRIX {
            let (f_sm, f_ws) = run(KernelMode::Fast, threads);
            let ctx = format!("lens={lens:?} cols={cols} threads={threads}");
            // Softmax outputs live in [0, 1]: a flat absolute ε suffices.
            assert_eps_parity(&f_sm, &s_sm, |_| 1.0, &format!("segment_softmax {ctx}"));
            assert_eps_parity(
                &f_ws,
                &s_ws,
                |i| ws_scale[i],
                &format!("segment_weighted_sum {ctx}"),
            );
        }
    }
    restore_defaults();
}

/// The end-to-end gate: train on the full fixed corpus (LLVM 12-loop
/// suite + polybench-lite + mibench-lite) in strict mode, then serve the
/// checkpoint through the batched serving path in both modes. Fast mode
/// must reproduce the strict decisions exactly, loop for loop — the
/// product-level guarantee all the ε bounds above exist to protect.
#[test]
fn fast_serving_decisions_match_strict_on_the_full_corpus() {
    let _guard = lock_mode();
    let mut corpus = suite::llvm_suite();
    corpus.extend(polybench::polybench());
    corpus.extend(mibench::mibench());
    assert!(corpus.len() >= 24, "corpus shrank: {}", corpus.len());

    let mut cfg = NvConfig::fast()
        .with_seed(1729)
        .with_kernel_mode(KernelMode::Strict);
    cfg.ppo.train_batch = 24;
    cfg.ppo.minibatch = 8;
    cfg.ppo.epochs = 2;
    let mut env = VectorizeEnv::new(corpus, cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg.clone());
    nv.train(&mut env, 2);
    let checkpoint = nv.checkpoint();
    let samples: Vec<_> = env.contexts().iter().map(|c| c.sample.clone()).collect();
    assert!(
        samples.len() >= 24,
        "corpus lost loops: {} contexts",
        samples.len()
    );

    let serve_decisions = |mode: KernelMode| {
        let mut m = NeuroVectorizer::new(cfg.clone().with_kernel_mode(mode));
        m.restore(&checkpoint).expect("restore");
        let handle = m.serve();
        let decisions: Vec<(usize, usize)> = samples
            .iter()
            .map(|s| handle.decide_sample(s).expect("serve decision").0)
            .collect();
        handle.shutdown();
        decisions
    };

    let strict = serve_decisions(KernelMode::Strict);
    let fast = serve_decisions(KernelMode::Fast);
    assert_eq!(fast, strict, "fast-mode serving changed a corpus decision");
    restore_defaults();
}

/// Direct (unbatched) inference agrees too: `decide` over every corpus
/// sample is mode-invariant on a freshly seeded (untrained) model, where
/// logits sit closest together and a reassociation flip would be likeliest.
#[test]
fn fast_direct_inference_matches_strict_on_fresh_weights() {
    let _guard = lock_mode();
    let cfg = NvConfig::fast().with_seed(5);
    let mut corpus = suite::llvm_suite();
    corpus.extend(polybench::polybench());
    corpus.extend(mibench::mibench());
    let env = VectorizeEnv::new(corpus, cfg.target.clone(), &cfg.embed);
    let space = env.space();
    let decide_all = |mode: KernelMode| {
        let m = NeuroVectorizer::new(cfg.clone().with_kernel_mode(mode));
        env.contexts()
            .iter()
            .map(|c| m.decide(&c.sample, space))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        decide_all(KernelMode::Fast),
        decide_all(KernelMode::Strict),
        "fast-mode direct inference changed a decision"
    );
    restore_defaults();
}

/// Finite well-scaled gradients flow through the fast kernels ε-close to
/// strict: one fused `linear → tanh → sum` backward pass per thread
/// count (dx, dW, db all bounded by the forward magnitudes).
#[test]
fn fast_gradients_are_eps_close_to_strict() {
    let _guard = lock_mode();
    kernels::set_matmul_grain(1);
    let (m, k, n) = (4usize, 340usize, 24usize);
    let mut store = ParamStore::new(11);
    let x_init = finite_tensor(m, k, 21);
    let w = store.param("w", finite_tensor(k, n, 22));
    let b = store.param("b", finite_tensor(1, n, 23));
    let run = |mode: KernelMode, threads: usize| {
        kernels::set_kernel_mode(mode);
        kernels::set_matmul_threads(threads);
        let mut g = Graph::new(&store);
        let x = g.input(x_init.clone());
        let (wn, bn) = (g.param(w), g.param(b));
        let y = g.linear(x, wn, bn);
        let t = g.tanh(y);
        let loss = g.sum_all(t);
        g.backward(loss);
        let grads = g.param_grads();
        let mut all = g.grad(x).expect("dx").data().to_vec();
        all.extend_from_slice(grads[&w].data());
        all.extend_from_slice(grads[&b].data());
        all
    };
    let strict = run(KernelMode::Strict, 1);
    for threads in THREAD_MATRIX {
        let fast = run(KernelMode::Fast, threads);
        // tanh'·sums keep every gradient O(k); scale by the reduction
        // depth for the dW entries accumulated over m·k products.
        assert_eps_parity(
            &fast,
            &strict,
            |_| k as f32,
            &format!("gradients threads={threads}"),
        );
    }
    restore_defaults();
}
