//! The paper's qualitative claims, asserted end to end at smoke scale.
//!
//! Quantitative paper-vs-measured numbers live in EXPERIMENTS.md; these
//! tests pin the *shape* of every result so regressions in any substrate
//! crate surface as a failed claim.

use neurovectorizer::experiments::{
    fig1_dot_product_grid, fig2_bruteforce_suite, fig7_comparison, fig8_polybench, fig9_mibench,
    figure7_benchmarks, train_framework, Scale,
};
use nvc_machine::TargetConfig;
use nvc_vectorizer::VectorDecision;

/// §2.1 + Figure 1: the baseline picks (4,2); most configurations beat
/// it; the baseline is ~2.6× over scalar; the extreme corner collapses.
#[test]
fn claim_figure1_landscape() {
    let d = fig1_dot_product_grid(&TargetConfig::i7_8559u());
    assert_eq!(d.baseline, VectorDecision::new(4, 2), "paper: (VF=4, IF=2)");
    assert!(
        (2.0..3.2).contains(&d.baseline_over_scalar),
        "paper: 2.6x, got {:.2}",
        d.baseline_over_scalar
    );
    let total = d.vfs.len() * d.ifs.len();
    assert!(
        d.better_than_baseline() * 2 >= total,
        "paper: 26/35 beat the baseline; got {}/{total}",
        d.better_than_baseline()
    );
    // The best configuration is strongly vectorized and bounded.
    assert!(d.best.0.elems_per_block() >= 16);
    assert!(d.best.1 > 1.0 && d.best.1 < 2.0);
    // VF×IF beyond the trip count collapses.
    let worst = d
        .normalized
        .iter()
        .flatten()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(worst < 0.6, "no over-vectorization cliff found: {worst}");
}

/// §2.1 + Figure 2: brute force never loses to the baseline, and finds
/// real headroom on several tests.
#[test]
fn claim_figure2_headroom() {
    let entries = fig2_bruteforce_suite(&TargetConfig::i7_8559u());
    assert!(entries.len() >= 14);
    for e in &entries {
        assert!(
            e.best_over_baseline >= 1.0 - 1e-9,
            "{} lost to baseline",
            e.name
        );
    }
    let over_1_05 = entries
        .iter()
        .filter(|e| e.best_over_baseline > 1.05)
        .count();
    assert!(
        over_1_05 >= 4,
        "paper shows widespread headroom; got {over_1_05} tests > 1.05x"
    );
}

/// §4 + Figures 7–9, at smoke training scale: the *ordering* of methods
/// the paper reports. (Magnitudes are in EXPERIMENTS.md.)
#[test]
fn claim_method_ordering() {
    let (nv, env, stats) = train_framework(Scale::smoke());
    // Training converges upward (Figure 5's qualitative point).
    let first = stats.first().unwrap().reward_mean;
    let last = stats.last().unwrap().reward_mean;
    assert!(last > first, "no learning: {first:.3} → {last:.3}");

    let f7 = fig7_comparison(&nv, &env, &figure7_benchmarks());
    let avg = |m: &str| f7.average(m);

    // Brute force is the oracle: it dominates everything.
    for m in ["baseline", "random", "polly", "decision_tree", "nns", "rl"] {
        assert!(
            avg("brute_force") >= avg(m) - 1e-9,
            "brute force must dominate {m}"
        );
    }
    // RL beats the baseline and random search (paper: 2.67x vs <1x).
    assert!(avg("rl") > 1.0, "rl = {:.3}", avg("rl"));
    assert!(
        avg("rl") > avg("random") - 0.15,
        "rl should not lose to random"
    );
    // RL is within a modest gap of brute force (paper: 3%; smoke-scale
    // training gets within 15%).
    assert!(
        avg("rl") / avg("brute_force") > 0.85,
        "rl {:.3} too far from brute force {:.3}",
        avg("rl"),
        avg("brute_force")
    );

    // Figure 8: Polly dominates on PolyBench overall; the combination is
    // at least as good as Polly alone (paper: 2.92x > 2.08x baselines).
    let f8 = fig8_polybench(&nv);
    assert!(
        f8.average("polly") > 1.3,
        "polly = {:.3}",
        f8.average("polly")
    );
    // At smoke training scale the policy is noisy on out-of-distribution
    // tiled loops, so allow modest slack; the bench-scale harness shows
    // the combination matching or beating Polly (EXPERIMENTS.md).
    assert!(
        f8.average("rl+polly") >= f8.average("polly") * 0.8,
        "combination regressed Polly too much: {:.3} vs {:.3}",
        f8.average("rl+polly"),
        f8.average("polly")
    );
    // Polly wins at least two kernels outright; it does not win all six
    // (the paper's RL wins three of six).
    let polly_idx = f8.methods.iter().position(|m| m == "polly").unwrap();
    let wins = f8.speedups[polly_idx].iter().filter(|&&s| s > 1.2).count();
    let non_wins = f8.speedups[polly_idx]
        .iter()
        .filter(|&&s| s <= 1.05)
        .count();
    assert!(wins >= 2, "polly should win big matrix kernels");
    assert!(non_wins >= 2, "polly should not win everywhere");

    // Figure 9: loop-minor programs cap the achievable speedup near the
    // paper's 1.1x; nothing regresses below baseline meaningfully.
    let f9 = fig9_mibench(&nv);
    let rl9 = f9.average("rl");
    assert!(
        (0.95..1.6).contains(&rl9),
        "MiBench average out of the loop-minor regime: {rl9:.3}"
    );
    let rl_idx = f9.methods.iter().position(|m| m == "rl").unwrap();
    for (b, s) in f9.benchmarks.iter().zip(f9.speedups[rl_idx].iter()) {
        assert!(*s > 0.9, "{b} regressed under RL: {s:.3}");
    }
}

/// §3.4: the compile-time timeout penalty is reachable and bounded.
#[test]
fn claim_timeout_penalty() {
    use neurovectorizer::NvConfig;
    use neurovectorizer::VectorizeEnv;

    // A deliberately fat loop body at an extreme factor must trip the 10×
    // compile budget and earn exactly −9.
    let mut body = String::new();
    let mut decls = String::new();
    for k in 0..24 {
        decls.push_str(&format!(
            "float fa{k}[4096]; float fb{k}[4096]; float fc{k}[4096];\n"
        ));
        body.push_str(&format!(
            "        fa{k}[i] = fb{k}[i] * fc{k}[i] + fa{k}[i];\n"
        ));
    }
    let src =
        format!("{decls}void fat(int n) {{\n    for (int i = 0; i < n; i++) {{\n{body}    }}\n}}");
    let k = nvc_datasets::Kernel::new("fat", "t", src, nvc_ir::ParamEnv::new().with("n", 4096));
    let cfg = NvConfig::fast();
    let env = VectorizeEnv::new(vec![k], cfg.target.clone(), &cfg.embed);
    assert_eq!(env.contexts().len(), 1);
    let r = env.reward_of_decision(0, VectorDecision::new(64, 16));
    assert_eq!(r, neurovectorizer::TIMEOUT_PENALTY, "paper: reward −9");
    // Sane factors do not time out.
    let ok = env.reward_of_decision(0, VectorDecision::new(8, 2));
    assert!(ok > -1.0);
}
