//! Integration tests for the serving subsystem: cache semantics under
//! concurrency, batched-vs-single decision parity through the full
//! trained model, and the end-to-end JSON-lines protocol.

use std::sync::Arc;

use neurovectorizer::{run_daemon, NeuroVectorizer, NvConfig, ServeConfig, VectorizeEnv};
use nvc_datasets::generator;
use nvc_serve::{sample_key, Json, ShardedLruCache};

fn trained_nv(seed: u64) -> (NeuroVectorizer, VectorizeEnv) {
    let cfg = NvConfig::fast().with_seed(seed);
    let mut env = VectorizeEnv::new(
        generator::generate(seed, 12),
        cfg.target.clone(),
        &cfg.embed,
    );
    let mut nv = NeuroVectorizer::new(cfg);
    nv.train(&mut env, 2);
    (nv, env)
}

#[test]
fn cache_survives_concurrent_hammering() {
    // Total live keys (16 hot + 8×200 cold = 1616) stay far below every
    // shard's capacity (4096 / 8 = 512 per shard, spread ~200 each), so
    // "no evictions" is a guaranteed property: hot keys must stay
    // resident and each cold key misses exactly once, regardless of
    // thread scheduling.
    let cache: Arc<ShardedLruCache<(usize, usize)>> = Arc::new(ShardedLruCache::new(4096, 8));
    let threads = 8;
    let hot_keys: Vec<u64> = (0..16).map(|i| 0xABCD_0000 + i * 7919).collect();
    for &k in &hot_keys {
        cache.insert(k, (k as usize % 7, k as usize % 5));
    }
    let lookups_per_thread = 400u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let hot = hot_keys.clone();
            scope.spawn(move || {
                for i in 0..lookups_per_thread {
                    // Mix of shared hot keys and thread-distinct cold keys.
                    if i % 2 == 0 {
                        let k = hot[(i as usize) % hot.len()];
                        let got = cache.get(k).expect("hot key must stay resident");
                        assert_eq!(got, (k as usize % 7, k as usize % 5), "lost update");
                    } else {
                        let k = 0xF000_0000 + t as u64 * 1_000_000 + i;
                        assert!(cache.get(k).is_none());
                        cache.insert(k, (t, i as usize));
                        assert_eq!(cache.get(k), Some((t, i as usize)));
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    // Every lookup is accounted for: hits + misses == total gets issued.
    let gets = threads as u64 * lookups_per_thread * 3 / 2;
    assert_eq!(stats.hits + stats.misses, gets, "lost lookup accounting");
    // Hot keys were always hits after priming; each cold key missed once.
    let cold = threads as u64 * lookups_per_thread / 2;
    assert_eq!(stats.misses, cold);
    assert_eq!(stats.hits, gets - cold);
    assert_eq!(stats.evictions, 0, "workload must fit under capacity");
    assert_eq!(stats.len() as u64, cold + 16);
    // All shards participated.
    assert!(
        stats.occupancy.iter().all(|&o| o > 0),
        "idle shard: {:?}",
        stats.occupancy
    );
}

#[test]
fn served_decisions_match_direct_inference_bitwise() {
    let (nv, env) = trained_nv(11);
    let space = env.space().clone();
    // Ground truth: one-at-a-time greedy decisions from the trainer.
    let direct: Vec<_> = env
        .contexts()
        .iter()
        .map(|c| nv.decide(&c.sample, &space))
        .collect();
    let samples: Vec<_> = env.contexts().iter().map(|c| c.sample.clone()).collect();

    // Batched path through the serving layer (batch size > 1, 2 workers).
    let mut cfg = nv.config().clone();
    cfg.serve = ServeConfig::default().with_batch_size(8).with_workers(2);
    let mut nv2 = NeuroVectorizer::new(cfg);
    nv2.restore(&nv.checkpoint()).expect("restore");
    let handle = nv2.serve();
    for (sample, want) in samples.iter().zip(&direct) {
        let ((vf_idx, if_idx), _) = handle.decide_sample(sample).expect("decide");
        let got = space.decision_from_pair(vf_idx, if_idx);
        assert_eq!(got, *want, "batched decision diverged from single-path");
    }
    // Second round: identical answers, now from the cache.
    for (sample, want) in samples.iter().zip(&direct) {
        let (pair, cached) = handle.decide_sample(sample).expect("decide");
        assert!(cached, "repeat lookups must hit the cache");
        assert_eq!(space.decision_from_pair(pair.0, pair.1), *want);
    }
}

#[test]
fn serve_vectorize_matches_vectorize_source() {
    let (nv, _) = trained_nv(3);
    let sources: Vec<String> = generator::generate(29, 6)
        .into_iter()
        .map(|k| k.source)
        .collect();
    let expected: Vec<String> = sources
        .iter()
        .map(|s| nv.vectorize_source(s).expect("vectorize_source"))
        .collect();
    let handle = nv.serve();
    for (src, want) in sources.iter().zip(&expected) {
        let out = handle.vectorize(src).expect("serve vectorize");
        assert_eq!(&out.source, want, "serve path must reproduce the CLI path");
        assert!(!out.loops.is_empty());
    }
}

#[test]
fn concurrent_requests_agree_and_hit_counts_are_stable() {
    let (nv, _) = trained_nv(17);
    let sources: Vec<String> = generator::generate(31, 8)
        .into_iter()
        .map(|k| k.source)
        .collect();
    let handle = nv.serve();
    // Reference pass (cold) and expected per-source loop counts.
    let reference: Vec<String> = sources
        .iter()
        .map(|s| handle.vectorize(s).expect("prime").source)
        .collect();
    let threads = 6;
    let passes = 3;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let handle = &handle;
            let sources = &sources;
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..passes {
                    for (src, want) in sources.iter().zip(reference) {
                        let out = handle.vectorize(src).expect("vectorize");
                        assert_eq!(&out.source, want, "decision changed under concurrency");
                        assert!(out.loops.iter().all(|l| l.cached), "warm request missed");
                    }
                }
            });
        }
    });
    let m = handle.metrics();
    assert_eq!(
        m.requests,
        (sources.len() * (1 + threads * passes)) as u64,
        "request accounting drifted"
    );
    assert_eq!(m.errors, 0);
    let stats = handle.cache_stats();
    // Each distinct loop shape missed exactly once (the priming pass);
    // everything afterwards hit.
    assert_eq!(stats.misses, stats.insertions);
    assert!(stats.hits >= (threads * passes) as u64 * stats.insertions);
}

#[test]
fn daemon_end_to_end_with_trained_model() {
    let (nv, _) = trained_nv(5);
    let src = "float a[256]; float b[256];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i] * 3.0; } }";
    let direct = nv.vectorize_source(src).unwrap();
    let handle = nv.serve();
    let request = format!(
        "{}\n{}\n{{\"op\":\"stats\",\"id\":\"s\"}}\n{{\"op\":\"shutdown\"}}\n",
        nvc_serve::json::obj(vec![
            ("op", Json::from("vectorize")),
            ("id", Json::from("warmup")),
            ("source", Json::from(src)),
        ])
        .render(),
        nvc_serve::json::obj(vec![
            ("op", Json::from("vectorize")),
            ("id", Json::from("repeat")),
            ("source", Json::from(src)),
        ])
        .render(),
    );
    let mut out = Vec::new();
    run_daemon(&handle, request.as_bytes(), &mut out).unwrap();
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
    assert_eq!(lines.len(), 5, "4 responses + the final drain stats line");

    let first = Json::parse(lines[0]).unwrap();
    assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));
    let annotated = first.get("source").unwrap().as_str().unwrap();
    assert!(annotated.contains("#pragma clang loop vectorize_width"));
    assert_eq!(
        annotated, direct,
        "daemon output must match direct inference"
    );
    let loops = first.get("loops").unwrap().as_array().unwrap();
    assert_eq!(loops.len(), 1);
    assert_eq!(loops[0].get("cached").unwrap().as_bool(), Some(false));

    let second = Json::parse(lines[1]).unwrap();
    assert_eq!(second.get("id").unwrap().as_str(), Some("repeat"));
    let loops2 = second.get("loops").unwrap().as_array().unwrap();
    assert_eq!(loops2[0].get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(
        second.get("source").unwrap().as_str(),
        first.get("source").unwrap().as_str()
    );

    let stats = Json::parse(lines[2]).unwrap();
    assert_eq!(stats.get("id").unwrap().as_str(), Some("s"));
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
    assert_eq!(cache.get("misses").unwrap().as_f64(), Some(1.0));

    let bye = Json::parse(lines[3]).unwrap();
    assert_eq!(bye.get("shutdown").unwrap().as_bool(), Some(true));

    // Graceful drain: the daemon's last words are the session counters.
    let fin = Json::parse(lines[4]).unwrap();
    let final_stats = fin.get("final_stats").expect("final_stats after shutdown");
    assert_eq!(final_stats.get("requests").unwrap().as_f64(), Some(2.0));
}

#[test]
fn alpha_renamed_loops_share_cache_entries_across_requests() {
    let (nv, _) = trained_nv(13);
    let handle = nv.serve();
    let a = "float x[128]; float y[128];\nvoid f(int n) { for (int i = 0; i < n; i++) { x[i] = y[i]; } }";
    // Same loop shape, different names: must be a cache hit.
    let b = "float p[128]; float q[128];\nvoid g(int m) { for (int k = 0; k < m; k++) { p[k] = q[k]; } }";
    let first = handle.vectorize(a).unwrap();
    let second = handle.vectorize(b).unwrap();
    assert!(!first.loops[0].cached);
    assert!(
        second.loops[0].cached,
        "alpha-renamed loop must reuse the cached decision (sample_key normalization)"
    );
    assert_eq!(
        (first.loops[0].vf, first.loops[0].if_),
        (second.loops[0].vf, second.loops[0].if_)
    );
    // Keys really are equal at the sample level.
    let cfg = NvConfig::fast();
    let stmt_a =
        nvc_frontend::parse_statement("for (int i = 0; i < n; i++) { x[i] = y[i]; }").unwrap();
    let stmt_b =
        nvc_frontend::parse_statement("for (int k = 0; k < m; k++) { p[k] = q[k]; }").unwrap();
    let sa = nvc_embed::PathSample::from_contexts(
        &nvc_embed::extract_path_contexts(&stmt_a, cfg.embed.max_paths),
        &cfg.embed,
    );
    let sb = nvc_embed::PathSample::from_contexts(
        &nvc_embed::extract_path_contexts(&stmt_b, cfg.embed.max_paths),
        &cfg.embed,
    );
    assert_eq!(sample_key(&sa), sample_key(&sb));
}
