//! Integration tests for the hub tier: routing parity against a bare
//! `ServeHandle` over loopback TCP under concurrency, persistent-cache
//! restarts (same and changed checkpoint), A/B routing parity, and
//! hot-swap reload with requests in flight.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use neurovectorizer::{
    Hub, HubConfig, ModelSpec, NeuroVectorizer, NvConfig, ServeConfig, VectorizeEnv,
};
use nvc_datasets::generator;
use nvc_hub::server::{serve_tcp, HubHandle};
use nvc_serve::Json;

fn trained_nv(seed: u64) -> NeuroVectorizer {
    let cfg = NvConfig::fast().with_seed(seed);
    let mut env = VectorizeEnv::new(
        generator::generate(seed, 12),
        cfg.target.clone(),
        &cfg.embed,
    );
    let mut nv = NeuroVectorizer::new(cfg);
    nv.train(&mut env, 2);
    nv
}

/// A fresh model restored from `ckpt` (the hub side and the bare-handle
/// side must not share an instance for parity to mean anything).
fn restored(ckpt: &str) -> NeuroVectorizer {
    let mut nv = NeuroVectorizer::new(NvConfig::fast().with_seed(987));
    nv.restore(ckpt).expect("restore checkpoint");
    nv
}

fn spec(nv: NeuroVectorizer, name: &str, weight: u32) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        weight,
        checkpoint_hash: nv.checkpoint_hash(),
        model: Arc::new(nv),
    }
}

fn start_hub(cfg: HubConfig, specs: Vec<ModelSpec>) -> HubHandle {
    let hub = Hub::new(cfg, ServeConfig::default());
    for s in specs {
        hub.register(s).unwrap();
    }
    hub.restore_cache().unwrap();
    serve_tcp(Arc::new(hub)).expect("bind loopback")
}

/// Sends one vectorize request on an open connection; returns the
/// parsed response.
fn request_on(reader: &mut BufReader<TcpStream>, extra: Vec<(&str, Json)>, source: &str) -> Json {
    let mut members = vec![("source", Json::from(source))];
    members.extend(extra);
    let line = nvc_serve::json::obj(members).render();
    let stream = reader.get_mut();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Json::parse(response.trim()).expect("parse response")
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    BufReader::new(TcpStream::connect(addr).expect("connect"))
}

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("nvc-hub-it-{tag}-{}", std::process::id()))
        .to_string_lossy()
        .to_string()
}

#[test]
fn hub_decisions_match_bare_serve_handle_under_tcp_concurrency() {
    let nv = trained_nv(21);
    let ckpt = nv.checkpoint();
    let sources: Vec<String> = generator::generate(33, 10)
        .into_iter()
        .map(|k| k.source)
        .collect();

    // Ground truth: a bare in-process ServeHandle over the same weights.
    let expected: Vec<String> = {
        let handle = restored(&ckpt).serve();
        sources
            .iter()
            .map(|s| handle.vectorize(s).expect("bare vectorize").source)
            .collect()
    };

    let handle = start_hub(
        HubConfig::default().with_listen("127.0.0.1:0"),
        vec![spec(restored(&ckpt), "prod", 1)],
    );
    let addr = handle.addr();

    // ≥ 8 concurrent client connections, every one comparing against
    // the bare-handle ground truth bitwise.
    std::thread::scope(|scope| {
        for c in 0..8 {
            let sources = &sources;
            let expected = &expected;
            scope.spawn(move || {
                let mut conn = connect(addr);
                for pass in 0..2 {
                    for (src, want) in sources.iter().zip(expected) {
                        let v = request_on(&mut conn, vec![], src);
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "client {c} pass {pass}: {}",
                            v.render()
                        );
                        assert_eq!(v.get("model").unwrap().as_str(), Some("prod"));
                        assert_eq!(
                            v.get("source").unwrap().as_str(),
                            Some(want.as_str()),
                            "hub decision diverged from bare ServeHandle"
                        );
                    }
                }
            });
        }
    });
    let stats = handle.hub().stats_json();
    let requests = stats
        .get("models")
        .unwrap()
        .get("prod")
        .unwrap()
        .get("requests")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(requests as u64, 8 * 2 * sources.len() as u64);
    handle.shutdown();
}

#[test]
fn warm_restart_restores_cache_and_changed_checkpoint_invalidates() {
    let nv = trained_nv(5);
    let ckpt = nv.checkpoint();
    let sources: Vec<String> = generator::generate(44, 6)
        .into_iter()
        .map(|k| k.source)
        .collect();
    let cache_path = tmp_path("restart");
    let cfg = HubConfig::default()
        .with_listen("127.0.0.1:0")
        .with_cache_path(cache_path.clone());

    // Cold hub: prime the cache over TCP, then shut down (persists).
    let first_pass: Vec<String> = {
        let handle = start_hub(cfg.clone(), vec![spec(restored(&ckpt), "prod", 1)]);
        let mut conn = connect(handle.addr());
        let out = sources
            .iter()
            .map(|s| {
                let v = request_on(&mut conn, vec![], s);
                assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
                v.get("source").unwrap().as_str().unwrap().to_string()
            })
            .collect();
        handle.shutdown();
        out
    };
    assert!(
        std::fs::metadata(&cache_path).is_ok(),
        "shutdown must write the cache snapshot"
    );

    // Warm restart, same checkpoint: every loop is a hit and decisions
    // are unchanged.
    {
        let handle = start_hub(cfg.clone(), vec![spec(restored(&ckpt), "prod", 1)]);
        let mut conn = connect(handle.addr());
        for (src, want) in sources.iter().zip(&first_pass) {
            let v = request_on(&mut conn, vec![], src);
            assert_eq!(v.get("source").unwrap().as_str(), Some(want.as_str()));
            for l in v.get("loops").unwrap().as_array().unwrap() {
                assert_eq!(
                    l.get("cached").unwrap().as_bool(),
                    Some(true),
                    "warm restart must serve every loop from the restored cache"
                );
            }
        }
        let m = handle
            .hub()
            .registry()
            .get("prod")
            .unwrap()
            .handle
            .metrics();
        assert!(m.entries_restored > 0, "nothing restored");
        assert_eq!(m.entries_invalidated_by_version, 0);
        assert_eq!(m.batches, 0, "warm restart must not run the model");
        handle.shutdown();
    }

    // Restart with a *different* checkpoint: the snapshot is versioned
    // out, nothing is served stale.
    {
        let other = trained_nv(99);
        assert_ne!(other.checkpoint_hash(), restored(&ckpt).checkpoint_hash());
        let handle = start_hub(cfg, vec![spec(other, "prod", 1)]);
        let mut conn = connect(handle.addr());
        let v = request_on(&mut conn, vec![], &sources[0]);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        for l in v.get("loops").unwrap().as_array().unwrap() {
            assert_eq!(
                l.get("cached").unwrap().as_bool(),
                Some(false),
                "stale snapshot entries must not serve under a new checkpoint"
            );
        }
        let m = handle
            .hub()
            .registry()
            .get("prod")
            .unwrap()
            .handle
            .metrics();
        assert_eq!(m.entries_restored, 0);
        assert!(m.entries_invalidated_by_version > 0, "mismatch not counted");
        handle.shutdown();
    }
    let _ = std::fs::remove_file(&cache_path);
}

#[test]
fn ab_split_of_identical_checkpoints_matches_single_model_hub() {
    let nv = trained_nv(13);
    let ckpt = nv.checkpoint();
    let sources: Vec<String> = generator::generate(55, 8)
        .into_iter()
        .map(|k| k.source)
        .collect();

    let single = start_hub(
        HubConfig::default().with_listen("127.0.0.1:0"),
        vec![spec(restored(&ckpt), "only", 1)],
    );
    let ab = start_hub(
        HubConfig::default().with_listen("127.0.0.1:0"),
        vec![spec(restored(&ckpt), "a", 1), spec(restored(&ckpt), "b", 1)],
    );
    let mut single_conn = connect(single.addr());
    let mut ab_conn = connect(ab.addr());
    let mut models_seen = std::collections::HashSet::new();
    for (i, src) in sources.iter().enumerate() {
        let want = request_on(&mut single_conn, vec![], src);
        // Spread the split with distinct route keys; decisions must not
        // depend on which side serves (same checkpoint both sides).
        let route = format!("client-{i}");
        let got = request_on(
            &mut ab_conn,
            vec![("route", Json::from(route.as_str()))],
            src,
        );
        assert_eq!(
            got.get("source").unwrap().as_str(),
            want.get("source").unwrap().as_str(),
            "A/B split of one checkpoint changed a decision"
        );
        models_seen.insert(got.get("model").unwrap().as_str().unwrap().to_string());
    }
    assert_eq!(
        models_seen.len(),
        2,
        "route keys never reached both sides of a 1:1 split: {models_seen:?}"
    );
    single.shutdown();
    ab.shutdown();
}

#[test]
fn reload_hot_swaps_without_dropping_inflight_requests() {
    let nv = trained_nv(7);
    let ckpt_a = nv.checkpoint();
    let other = trained_nv(77);
    let ckpt_b = other.checkpoint();
    let dir = tmp_path("reload");
    std::fs::create_dir_all(&dir).unwrap();
    let path_b = format!("{dir}/b.ckpt");
    std::fs::write(&path_b, &ckpt_b).unwrap();

    let hub = Hub::new(
        HubConfig::default().with_listen("127.0.0.1:0"),
        ServeConfig::default(),
    )
    .with_loader(NeuroVectorizer::hub_loader(NvConfig::fast()));
    hub.register(spec(restored(&ckpt_a), "prod", 1)).unwrap();
    let old_hash = hub.registry().get("prod").unwrap().checkpoint_hash;
    let handle = serve_tcp(Arc::new(hub)).unwrap();
    let addr = handle.addr();

    let sources: Vec<String> = generator::generate(66, 8)
        .into_iter()
        .map(|k| k.source)
        .collect();

    // Clients hammer vectorize while another connection reloads.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let sources = &sources;
            scope.spawn(move || {
                let mut conn = connect(addr);
                for pass in 0..6 {
                    for src in sources {
                        let v = request_on(&mut conn, vec![], src);
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "request dropped during reload (pass {pass}): {}",
                            v.render()
                        );
                    }
                }
            });
        }
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut conn = connect(addr);
            let line = nvc_serve::json::obj(vec![
                ("op", Json::from("reload")),
                ("model", Json::from("prod")),
                ("checkpoint", Json::from(path_b.as_str())),
            ])
            .render();
            let stream = conn.get_mut();
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut response = String::new();
            conn.read_line(&mut response).unwrap();
            let v = Json::parse(response.trim()).unwrap();
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "reload failed: {response}"
            );
        });
    });

    let entry = handle.hub().registry().get("prod").unwrap();
    assert_ne!(entry.checkpoint_hash, old_hash, "reload did not swap");
    // And the hub now answers with the new checkpoint's decisions.
    let reference = restored(&ckpt_b).serve();
    let mut conn = connect(addr);
    for src in &sources {
        let want = reference.vectorize(src).unwrap().source;
        let got = request_on(&mut conn, vec![], src);
        assert_eq!(got.get("source").unwrap().as_str(), Some(want.as_str()));
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
