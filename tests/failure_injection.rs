//! Failure injection: malformed inputs, hostile sources and degenerate
//! configurations must produce errors or graceful fallbacks — never
//! panics or silent miscompiles.

use neurovectorizer::{Compiler, NeuroVectorizer, NvConfig, VectorizeEnv};

/// Serializes the three matmul panic tests: they arm the process-global
/// injection hook and (the `k`-split twin) flip the process-global
/// kernel mode, so they must not overlap each other. Lock poisoning is
/// ignored — a failed sibling shouldn't cascade.
static MATMUL_KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());
use nvc_datasets::Kernel;
use nvc_embed::{EmbedConfig, PathSample};
use nvc_frontend::parse_translation_unit;
use nvc_ir::ParamEnv;

#[test]
fn malformed_sources_error_cleanly() {
    // (An empty file is a valid, empty translation unit — like real C.)
    let bad = [
        "int",                               // truncated declaration
        "void f( {",                         // broken signature
        "void f() { for (;;; }",             // broken loop header
        "void f() { int x = ; }",            // missing initializer
        "int a[)];",                         // broken dimension
        "void f() { a[0] = 1; } garbage $$", // trailing junk
        "#define\nint x;",                   // nameless macro
        "void f() { /* unterminated",        // unterminated comment
        "char s = 'ab;",                     // broken char literal
    ];
    for src in bad {
        assert!(
            parse_translation_unit(src).is_err(),
            "should reject: {src:?}"
        );
    }
}

#[test]
fn unparseable_kernels_are_skipped_by_the_env() {
    let cfg = NvConfig::fast();
    let kernels = vec![
        Kernel::new("bad", "t", "not c at all {{{", ParamEnv::new()),
        Kernel::new(
            "good",
            "t",
            "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) { a[i] = i; } }",
            ParamEnv::new(),
        ),
    ];
    let env = VectorizeEnv::new(kernels, cfg.target.clone(), &cfg.embed);
    // The bad kernel is dropped; the good loop trains fine.
    assert_eq!(env.contexts().len(), 1);
}

#[test]
fn compiler_reports_errors_not_panics() {
    let compiler = Compiler::default();
    let bad = Kernel::new("bad", "t", "%%%%", ParamEnv::new());
    assert!(compiler.run_baseline(&bad).is_err());
}

#[test]
fn zero_trip_loops_are_harmless() {
    let compiler = Compiler::default();
    let k = Kernel::new(
        "empty",
        "t",
        "int a[16];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = 0; } }",
        ParamEnv::new().with("n", 0),
    );
    let t = compiler.run_baseline(&k).expect("compiles");
    assert!(t.total_cycles.is_finite() && t.total_cycles > 0.0);
    // Even absurd pragmas on an empty loop stay finite.
    let t2 = compiler
        .run_with(&k, |_| {
            neurovectorizer::LoopDecision::Pragma(nvc_vectorizer::VectorDecision::new(64, 16))
        })
        .expect("compiles");
    assert!(t2.total_cycles.is_finite());
}

#[test]
fn loopless_programs_produce_no_contexts() {
    let cfg = NvConfig::fast();
    let k = Kernel::new(
        "scalar_only",
        "t",
        "int x;\nvoid f(int n) { x = n * 3 + 1; }",
        ParamEnv::new().with("n", 5),
    );
    let env = VectorizeEnv::new(vec![k], cfg.target.clone(), &cfg.embed);
    assert_eq!(env.contexts().len(), 0);
    // And the compiler still times the program (scalar work + overhead).
    let compiler = Compiler::default();
    let k2 = Kernel::new(
        "s",
        "t",
        "int x;\nvoid f(int n) { x = n; }",
        ParamEnv::new(),
    )
    .with_scalar_work(1000);
    let t = compiler.run_baseline(&k2).expect("compiles");
    assert!(t.loops.is_empty());
    assert!(t.total_cycles >= 500.0);
}

#[test]
fn inference_on_empty_and_degenerate_samples() {
    let nv = NeuroVectorizer::new(NvConfig::fast());
    // An empty path sample (degenerate loop) must still yield a valid
    // decision, not a panic.
    let empty = PathSample {
        starts: vec![],
        paths: vec![],
        ends: vec![],
    };
    let space = nvc_vectorizer::ActionSpace::for_target(&nv.config().target);
    let d = nv.decide(&empty, &space);
    assert!(d.vf >= 1 && d.if_ >= 1);
}

#[test]
fn vectorize_source_rejects_bad_input_and_preserves_good_input() {
    let nv = NeuroVectorizer::new(NvConfig::fast());
    assert!(nv.vectorize_source("definitely not C").is_err());

    // A loopless file passes through without modification.
    let src = "int x;\nvoid f(int n) { x = n; }";
    let out = nv.vectorize_source(src).expect("ok");
    assert_eq!(out, src);
}

#[test]
fn checkpoint_corruption_is_detected() {
    let mut nv = NeuroVectorizer::new(NvConfig::fast());
    let good = nv.checkpoint();
    assert!(nv.restore(&good).is_ok());
    assert!(nv.restore("garbage").is_err());
    assert!(nv.restore("").is_err());
    // Truncated checkpoint.
    let truncated: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
    assert!(nv.restore(&truncated).is_err());
}

/// A panicking worker inside the threaded matmul must propagate to the
/// caller — no hang (the scoped driver joins every shard before
/// re-panicking) — and must not poison the shared arena: the half-written
/// output tensor never reaches the tape, recycled buffers are zeroed on
/// reuse, so subsequent graphs over the *same* arena compute clean bits.
#[test]
fn threaded_matmul_worker_panic_propagates_without_tearing_the_arena() {
    use nvc_nn::{kernels, Graph, ParamStore, Tensor, TensorArena};

    let _guard = MATMUL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // 53 rows with a distinctive total: no other test in this binary
    // builds a 53-row product, so arming the hook cannot hit them.
    const ROWS: usize = 53;
    let a = Tensor::from_vec(
        ROWS,
        8,
        (0..ROWS * 8).map(|i| (i as f32 * 0.3).sin()).collect(),
    );
    let b = Tensor::from_vec(8, 6, (0..48).map(|i| (i as f32 * 0.7).cos()).collect());

    kernels::set_matmul_threads(4);
    kernels::set_matmul_grain(1);
    // The reference is the *deployed* kernel under the same knobs (a
    // clean run before arming the hook), so this test holds under both
    // kernel modes — including the `NVC_KERNEL_MODE=fast` CI leg.
    let want = a.matmul(&b);
    let store = ParamStore::new(0);
    let arena = TensorArena::new();
    kernels::inject_worker_panic(20, ROWS);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut g = Graph::with_arena(&store, &arena);
        let an = g.input(a.clone());
        let bn = g.input(b.clone());
        let _ = g.matmul(an, bn);
    }));
    kernels::clear_worker_panic();
    assert!(outcome.is_err(), "worker panic must reach the caller");

    // The arena survives: a fresh graph drawing the recycled buffers
    // computes exactly the reference bits (no torn rows resurface).
    for _ in 0..2 {
        let mut g = Graph::with_arena(&store, &arena);
        let an = g.input(a.clone());
        let bn = g.input(b.clone());
        let mm = g.matmul(an, bn);
        assert_eq!(g.value(mm), &want, "post-panic arena graph diverged");
    }
    // Restore the *configured* defaults (not a hardcoded 1) so the
    // NVC_MATMUL_THREADS CI leg keeps threading the rest of this binary.
    kernels::set_matmul_threads(kernels::default_matmul_threads());
    kernels::set_matmul_grain(kernels::DEFAULT_MATMUL_GRAIN);
}

/// The persistent worker pool and the scoped per-call driver must have
/// *identical* panic semantics: the payload resurfaces on the caller,
/// the poisoned output never reaches the tape, and the driver is
/// immediately reusable for clean work — so flipping `NVC_MATMUL_POOL`
/// can never change what a crash looks like to the product.
#[test]
fn pool_and_scoped_drivers_share_panic_semantics() {
    use nvc_nn::{kernels, Graph, ParamStore, Tensor, TensorArena};

    let _guard = MATMUL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // 59 rows: unique to this test within the binary (the hook arms on
    // the product's total row count).
    const ROWS: usize = 59;
    let a = Tensor::from_vec(
        ROWS,
        5,
        (0..ROWS * 5).map(|i| (i as f32 * 0.11).sin()).collect(),
    );
    let b = Tensor::from_vec(5, 4, (0..20).map(|i| (i as f32 * 0.9).cos()).collect());

    kernels::set_matmul_threads(4);
    kernels::set_matmul_grain(1);
    // Deployed-kernel reference, mode-agnostic (see the arena twin).
    let want = a.matmul(&b);
    let store = ParamStore::new(0);
    for pool in [true, false] {
        kernels::set_matmul_pool(pool);
        let arena = TensorArena::new();
        kernels::inject_worker_panic(10, ROWS);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Graph::with_arena(&store, &arena);
            let an = g.input(a.clone());
            let bn = g.input(b.clone());
            let _ = g.matmul(an, bn);
        }));
        kernels::clear_worker_panic();
        assert!(
            outcome.is_err(),
            "worker panic must reach the caller (pool={pool})"
        );
        let payload = outcome.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(
            msg.contains("injected panic"),
            "panic payload must survive the handoff verbatim (pool={pool}): {msg:?}"
        );
        // Same driver, same arena, clean bits immediately afterwards.
        let mut g = Graph::with_arena(&store, &arena);
        let an = g.input(a.clone());
        let bn = g.input(b.clone());
        let mm = g.matmul(an, bn);
        assert_eq!(
            g.value(mm),
            &want,
            "post-panic compute diverged (pool={pool})"
        );
    }
    // Restore the *environment-configured* mode so the NVC_MATMUL_POOL=0
    // CI leg keeps exercising the scoped driver in the rest of the binary.
    kernels::set_matmul_pool(std::env::var("NVC_MATMUL_POOL").map_or(true, |v| v.trim() != "0"));
    kernels::set_matmul_threads(kernels::default_matmul_threads());
    kernels::set_matmul_grain(kernels::DEFAULT_MATMUL_GRAIN);
}

/// Fast mode's `k`-split scheduler feeds reduction-dimension shards
/// through the same span driver as row sharding — so a panicking
/// `k`-shard must behave exactly like a panicking row shard: the payload
/// resurfaces on the caller verbatim, under the pool *and* the scoped
/// fallback driver, and the kernels compute clean values immediately
/// afterwards.
#[test]
fn k_split_shard_panic_resurfaces_verbatim_under_both_drivers() {
    use nvc_nn::{kernels, Tensor};

    let _guard = MATMUL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    // Tall-thin shape: 47 output rows, 96-deep reduction. With 64 funded
    // workers and the work floor pinned to 1, `k`-splitting engages
    // (funded 64 > 47 rows) and cuts 96 into 2-wide `k` windows. The
    // armed "row" 5 is interpreted as a `k` index by the split driver,
    // so the window covering k=5 panics. 47 is unique in this binary, so
    // the marker cannot trip concurrent tests.
    const M: usize = 47;
    const KD: usize = 96;
    const N: usize = 4;
    let a = Tensor::from_vec(
        M,
        KD,
        (0..M * KD).map(|i| (i as f32 * 0.13).sin()).collect(),
    );
    let b = Tensor::from_vec(
        KD,
        N,
        (0..KD * N).map(|i| (i as f32 * 0.41).cos()).collect(),
    );
    let mut want = Tensor::zeros(M, N);
    a.matmul_accum_into_tiled(&b, &mut want);

    kernels::set_matmul_threads(64);
    kernels::set_matmul_grain(1);
    kernels::set_kernel_mode(kernels::KernelMode::Fast);
    for pool in [true, false] {
        kernels::set_matmul_pool(pool);
        kernels::inject_worker_panic(5, M);
        let outcome = std::panic::catch_unwind(|| a.matmul(&b));
        kernels::clear_worker_panic();
        assert!(
            outcome.is_err(),
            "k-split shard panic must reach the caller (pool={pool})"
        );
        let payload = outcome.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(
            msg.contains("injected panic"),
            "k-split panic payload must survive the handoff verbatim (pool={pool}): {msg:?}"
        );
        // Clean, ε-close values immediately afterwards (ε, not bits:
        // fast mode reassociates the reduction by design).
        let got = a.matmul(&b);
        for (i, (&g, &w)) in got.data().iter().zip(want.data().iter()).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                "post-panic k-split value diverged (pool={pool}, idx={i}): {g} vs {w}"
            );
        }
    }
    kernels::set_matmul_pool(std::env::var("NVC_MATMUL_POOL").map_or(true, |v| v.trim() != "0"));
    kernels::set_matmul_threads(kernels::default_matmul_threads());
    kernels::set_matmul_grain(kernels::DEFAULT_MATMUL_GRAIN);
    kernels::set_kernel_mode(kernels::default_kernel_mode());
}

#[test]
fn huge_requested_factors_never_escape_clamping() {
    // Whatever the caller asks for, the target caps apply.
    let cfg = EmbedConfig::fast();
    let _ = cfg;
    let compiler = Compiler::default();
    let k = Kernel::new(
        "k",
        "t",
        "float a[256]; float b[256];\nvoid f() { for (int i = 0; i < 256; i++) { a[i] = b[i]; } }",
        ParamEnv::new(),
    );
    let t = compiler
        .run_with(&k, |_| {
            neurovectorizer::LoopDecision::Pragma(nvc_vectorizer::VectorDecision::new(4096, 4096))
        })
        .expect("compiles");
    assert!(t.loops[0].decision.vf <= 64);
    assert!(t.loops[0].decision.if_ <= 16);
}
