//! Cross-crate integration: the full paper pipeline from source text to
//! reward, through every substrate crate.

use neurovectorizer::{Compiler, LoopDecision, NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::{generator, Kernel};
use nvc_frontend::{extract_loops, parse_translation_unit, strip_pragmas};
use nvc_ir::ParamEnv;
use nvc_rl::BanditEnv;
use nvc_vectorizer::VectorDecision;

/// Train → predict → inject → recompile: the annotated program must be at
/// least as fast as the baseline on the training pool (the agent can
/// always fall back to baseline-equivalent decisions).
#[test]
fn trained_agent_beats_baseline_on_training_pool() {
    let cfg = NvConfig::fast().with_seed(11);
    let kernels = generator::generate(11, 32);
    let mut env = VectorizeEnv::new(kernels.clone(), cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg.clone());
    nv.train(&mut env, 20);

    // Average the *greedy* policy's reward across all contexts.
    let mut total = 0.0;
    for i in 0..env.contexts().len() {
        let d = nv.decide(&env.contexts()[i].sample, env.space());
        total += env.reward_of_decision(i, d);
    }
    let mean = total / env.contexts().len() as f64;
    assert!(
        mean > 0.02,
        "greedy policy should beat the baseline on its own pool: {mean:+.4}"
    );
}

/// Pragma injection round trip: annotated source recompiles and the
/// injected hints are what the compiler actually honors (modulo legality
/// clamping).
#[test]
fn injected_pragmas_drive_the_compiler() {
    let nv = NeuroVectorizer::new(NvConfig::fast());
    let src = "float xs[4096]; float ys[4096];
void f(int n) {
    for (int i = 0; i < n; i++) {
        ys[i] = xs[i] * 0.5;
    }
}";
    let annotated = nv.vectorize_source(src).expect("annotates");
    assert!(annotated.contains("#pragma clang loop"));

    // The annotated program parses; the pragma attaches to the loop.
    let tu = parse_translation_unit(&annotated).expect("reparses");
    let loops = extract_loops(&tu, &annotated);
    let pragma = loops[0].pragma.expect("pragma attached");

    // Compiling with that explicit pragma equals compiling the annotated
    // source through the decision callback.
    let compiler = Compiler::default();
    let k_plain = Kernel::new(
        "k",
        "t",
        strip_pragmas(&annotated),
        ParamEnv::new().with("n", 4096),
    );
    let via_callback = compiler
        .run_with(&k_plain, |_| {
            LoopDecision::Pragma(VectorDecision::new(
                pragma.vectorize_width,
                pragma.interleave_count,
            ))
        })
        .expect("compiles");
    let k_annotated = Kernel::new("k2", "t", annotated, ParamEnv::new().with("n", 4096));
    let lowered = compiler.front_end(&k_annotated).expect("front end");
    // Loop extraction in the IR also sees the hint (stored during parse).
    assert_eq!(lowered.len(), 1);
    assert!(via_callback.total_cycles > 0.0);
}

/// Compile-and-run must be stable across every generator family at
/// several seeds: no panics, positive cycles, finite results.
#[test]
fn compiler_is_total_over_the_generator() {
    let compiler = Compiler::default();
    for seed in [1u64, 99, 12345] {
        for k in generator::generate(seed, 48) {
            let t = compiler
                .run_baseline(&k)
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
            assert!(
                t.total_cycles.is_finite() && t.total_cycles > 0.0,
                "{}",
                k.name
            );
            let s = compiler.run_scalar(&k).expect("scalar compiles");
            assert!(
                s.total_cycles >= t.total_cycles * 0.3,
                "{}: scalar absurdly fast vs baseline",
                k.name
            );
        }
    }
}

/// The environment's reward semantics: baseline decision ⇒ reward 0;
/// any decision ⇒ reward ≤ brute-force best; penalties bounded by −9.
#[test]
fn reward_semantics_hold_across_the_pool() {
    let cfg = NvConfig::fast();
    let mut env = VectorizeEnv::new(generator::generate(5, 24), cfg.target.clone(), &cfg.embed);
    let dims = env.action_dims();
    for i in 0..env.contexts().len() {
        let mut best = f64::NEG_INFINITY;
        for v in 0..dims.n_vf {
            for f in 0..dims.n_if {
                let r = env.reward(i, (v, f));
                assert!(r >= neurovectorizer::TIMEOUT_PENALTY - 1e-9);
                assert!(r <= 1.0 + 1e-9, "reward cannot exceed 1: {r}");
                best = best.max(r);
            }
        }
        assert!(best >= 0.0 - 1e-9, "brute force can always match baseline");
    }
}

/// Multi-loop programs: every innermost loop gets its own decision and
/// the per-loop reports add up.
#[test]
fn multi_loop_programs_decide_per_loop() {
    let compiler = Compiler::default();
    let k = Kernel::new(
        "multi",
        "t",
        "float a[2048]; float b[2048]; int c[2048]; int total;
void stage1(int n) {
    for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0; }
}
int stage2(int n) {
    int t = 0;
    for (int i = 0; i < n; i++) { t += c[i]; }
    return t;
}",
        ParamEnv::new().with("n", 2048),
    );
    let mut seen = Vec::new();
    let t = compiler
        .run_with(&k, |l| {
            seen.push(l.function.clone());
            LoopDecision::Pragma(VectorDecision::new(8, 2))
        })
        .expect("compiles");
    assert_eq!(seen, vec!["stage1".to_string(), "stage2".to_string()]);
    assert_eq!(t.loops.len(), 2);
    let sum: f64 = t.loops.iter().map(|l| l.nest_cycles).sum();
    assert!(t.total_cycles > sum, "program time includes call overhead");
}
