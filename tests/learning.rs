//! End-to-end online-learning tests: a hub serving a real trained
//! champion ingests measured rewards over the `report` verb, fine-tunes
//! a challenger in-process, canaries it through the A/B registry, and
//! promotes (or refuses to promote) it — all without restarting the
//! hub.
//!
//! Artifacts (the learning journal and the promotion log) are written
//! under `target/learning/` so CI can upload them.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use neurovectorizer::{
    Hub, HubConfig, LearnConfig, LearnEvent, ModelSpec, NeuroVectorizer, NvConfig, ServeConfig,
    VectorizeEnv,
};
use nvc_datasets::generator;
use nvc_hub::server::{serve_tcp, HubHandle};
use nvc_serve::Json;

/// Directory the CI workflow uploads as the `learning-artifacts`
/// bundle.
fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/learning");
    std::fs::create_dir_all(&dir).expect("create target/learning");
    dir
}

fn trained_champion(seed: u64) -> (NvConfig, NeuroVectorizer) {
    let cfg = NvConfig::fast().with_seed(seed);
    let mut env = VectorizeEnv::new(
        generator::generate(seed, 12),
        cfg.target.clone(),
        &cfg.embed,
    );
    let mut nv = NeuroVectorizer::new(cfg.clone());
    nv.train(&mut env, 2);
    (cfg, nv)
}

fn restored(cfg: &NvConfig, ckpt_path: &str) -> NeuroVectorizer {
    let text = std::fs::read_to_string(ckpt_path).expect("read checkpoint");
    let mut nv = NeuroVectorizer::new(cfg.clone());
    nv.restore(&text).expect("restore checkpoint");
    nv
}

/// A learning hub over loopback TCP: real champion, real
/// `challenger_trainer`, journal + promotion log under
/// `target/learning/{tag}-*.jsonl`.
fn start_learning_hub(tag: &str, seed: u64) -> (NvConfig, HubHandle, String) {
    let dir = artifact_dir();
    let journal = dir.join(format!("{tag}-journal.jsonl"));
    let promotions = dir.join(format!("{tag}-promotions.jsonl"));
    let champion_ckpt = dir.join(format!("{tag}-champion.ckpt"));
    let challenger_ckpt = dir.join(format!("{tag}-challenger.ckpt"));
    // Stale state from a previous run must not replay into this one.
    for p in [&journal, &promotions, &challenger_ckpt] {
        let _ = std::fs::remove_file(p);
    }

    let (cfg, champ) = trained_champion(seed);
    std::fs::write(&champion_ckpt, champ.checkpoint()).expect("write champion checkpoint");

    let lcfg = LearnConfig {
        journal_path: journal.to_string_lossy().into_owned(),
        promotion_log_path: Some(promotions.to_string_lossy().into_owned()),
        champion: "prod".to_string(),
        challenger: "challenger".to_string(),
        champion_checkpoint: champion_ckpt.to_string_lossy().into_owned(),
        challenger_checkpoint: challenger_ckpt.to_string_lossy().into_owned(),
        min_reports: 20,
        canary_weight: 1,
        z_threshold: 2.0,
        min_cohort: 6,
        interval_ms: 10,
    };
    let ckpt_path = champion_ckpt.to_string_lossy().into_owned();
    let hub = Hub::new(
        HubConfig::default().with_listen("127.0.0.1:0"),
        ServeConfig::default(),
    )
    .with_loader(NeuroVectorizer::hub_loader(cfg.clone()))
    .with_learning(lcfg, NeuroVectorizer::challenger_trainer(cfg.clone(), 4))
    .expect("enable learning");
    let nv = restored(&cfg, &ckpt_path);
    hub.register(ModelSpec {
        name: "prod".to_string(),
        weight: 3,
        checkpoint_hash: nv.checkpoint_hash(),
        model: Arc::new(nv),
    })
    .unwrap();
    let handle = serve_tcp(Arc::new(hub)).expect("bind loopback");
    (cfg, handle, ckpt_path)
}

fn request(reader: &mut BufReader<TcpStream>, members: Vec<(&str, Json)>) -> Json {
    let line = nvc_serve::json::obj(members).render();
    let stream = reader.get_mut();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Json::parse(response.trim()).expect("parse response")
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    BufReader::new(TcpStream::connect(addr).expect("connect"))
}

/// Vectorizes every drift source against `model` and returns one
/// `(source, loop key)` pair per decided loop.
fn mint_keys(
    conn: &mut BufReader<TcpStream>,
    model: &str,
    sources: &[String],
) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for src in sources {
        let v = request(
            conn,
            vec![
                ("op", Json::from("vectorize")),
                ("model", Json::from(model)),
                ("source", Json::from(src.as_str())),
            ],
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        for l in v.get("loops").unwrap().as_array().unwrap() {
            let key = l.get("key").unwrap().as_str().unwrap().to_string();
            pairs.push((src.clone(), key));
        }
    }
    pairs
}

/// Deterministic per-report jitter in `[-0.05, 0.05]` so reward cohorts
/// have nonzero variance (a Welch z needs one).
fn jitter(i: usize) -> f64 {
    ((i.wrapping_mul(2654435761) % 97) as f64 / 97.0 - 0.5) * 0.1
}

/// Posts `count` reports for `model`, cycling over the minted keys,
/// centered on `reward`. Includes `source` so keys re-correlate even
/// when they have aged out of the serving warm set.
fn report(
    conn: &mut BufReader<TcpStream>,
    model: &str,
    pairs: &[(String, String)],
    reward: f64,
    count: usize,
    salt: usize,
) {
    for i in 0..count {
        let (src, key) = &pairs[i % pairs.len()];
        let v = request(
            conn,
            vec![
                ("op", Json::from("report")),
                ("model", Json::from(model)),
                ("key", Json::from(key.as_str())),
                ("reward", Json::from(reward + jitter(i + salt))),
                ("source", Json::from(src.as_str())),
            ],
        );
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "report refused: {}",
            v.render()
        );
        assert_eq!(v.get("recorded").and_then(Json::as_bool), Some(true));
    }
}

/// The acceptance e2e: injected drift (a loop family the champion never
/// trained on) is recovered — reports journaled, challenger fine-tuned
/// from the champion's weights, canaried through the A/B split, and
/// promoted — with the hub serving throughout (no restart: one
/// `HubHandle`, one listener, start to finish).
#[test]
fn injected_drift_is_recovered_without_restarting_the_hub() {
    let (_cfg, handle, _ckpt) = start_learning_hub("drift", 42);
    let hub = Arc::clone(handle.hub());
    let mut conn = connect(handle.addr());
    let champion_hash = hub.registry().get("prod").unwrap().checkpoint_hash;

    // Drift: a different generator seed yields loop shapes the champion
    // never saw in training. Serve them (minting correlation keys) and
    // report poor measured rewards for the champion's decisions.
    let drift: Vec<String> = generator::generate(4242, 12)
        .into_iter()
        .map(|k| k.source)
        .collect();
    let pairs = mint_keys(&mut conn, "prod", &drift);
    assert!(!pairs.is_empty(), "drift sources must contain loops");
    report(&mut conn, "prod", &pairs, -0.5, 20, 0);

    // Controller step 1: the corpus crossed `min_reports`, so the
    // background trainer fine-tunes a challenger from the champion's
    // checkpoint and deploys it at canary weight.
    let events = hub.learn_step();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, LearnEvent::Trained { reports: 20 })),
        "expected a fine-tune, got {events:?}"
    );
    let canary_hash = events
        .iter()
        .find_map(|e| match e {
            LearnEvent::Canary { checkpoint_hash } => Some(*checkpoint_hash),
            _ => None,
        })
        .expect("challenger must canary");
    let chall = hub.registry().get("challenger").expect("canary registered");
    assert_eq!(chall.weight, 1);
    assert_eq!(chall.checkpoint_hash, canary_hash);
    assert_ne!(canary_hash, champion_hash, "fine-tune must change weights");

    // A/B: the challenger measures clearly better on the drifted
    // traffic. Fewer than `min_reports` new observations arrive before
    // the verdict, so the cadence guard keeps this cohort live.
    report(&mut conn, "challenger", &pairs, 0.5, 8, 100);
    let events = hub.learn_step();
    let (z, promoted_hash) = events
        .iter()
        .find_map(|e| match e {
            LearnEvent::Promoted { z, checkpoint_hash } => Some((*z, *checkpoint_hash)),
            _ => None,
        })
        .expect("winning challenger must promote");
    assert!(z >= 2.0, "promotion z {z} must clear the threshold");
    assert_eq!(promoted_hash, canary_hash);
    eprintln!("drift e2e: promoted challenger {promoted_hash:016x} at z = {z:+.1}");

    // The champion entry now serves the challenger's weights — same
    // name, same A/B weight, new content — and the canary is parked.
    let champ = hub.registry().get("prod").unwrap();
    assert_eq!(champ.checkpoint_hash, canary_hash);
    assert_eq!(champ.weight, 3);
    assert_eq!(hub.registry().get("challenger").unwrap().weight, 0);

    // Still serving on the same connection: responses stamp the
    // promoted hash.
    let v = request(
        &mut conn,
        vec![
            ("op", Json::from("vectorize")),
            ("model", Json::from("prod")),
            ("source", Json::from(drift[0].as_str())),
        ],
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        v.get("checkpoint_hash").unwrap().as_str(),
        Some(format!("{canary_hash:016x}").as_str())
    );

    // Durable artifacts: every report is journaled, and the promotion
    // log recorded the full lifecycle.
    let journal =
        std::fs::read_to_string(hub.learning().unwrap().config().journal_path.clone()).unwrap();
    assert_eq!(journal.lines().count(), 28, "20 champion + 8 challenger");
    let log = std::fs::read_to_string(
        hub.learning()
            .unwrap()
            .config()
            .promotion_log_path
            .clone()
            .unwrap(),
    )
    .unwrap();
    for event in [
        "\"event\":\"trained\"",
        "\"event\":\"canary\"",
        "\"event\":\"promoted\"",
    ] {
        assert!(log.contains(event), "promotion log missing {event}: {log}");
    }

    handle.shutdown();
}

/// Promotion safety, end to end: a challenger that measures *worse* on
/// live traffic is demoted to weight 0 and the champion's weights never
/// change — across several report/verdict rounds with noisy rewards.
#[test]
fn losing_challenger_is_never_promoted_end_to_end() {
    let (_cfg, handle, _ckpt) = start_learning_hub("safety", 7);
    let hub = Arc::clone(handle.hub());
    let mut conn = connect(handle.addr());
    let champion_hash = hub.registry().get("prod").unwrap().checkpoint_hash;

    let drift: Vec<String> = generator::generate(777, 12)
        .into_iter()
        .map(|k| k.source)
        .collect();
    let pairs = mint_keys(&mut conn, "prod", &drift);
    report(&mut conn, "prod", &pairs, 0.5, 20, 0);
    let events = hub.learn_step();
    assert!(events
        .iter()
        .any(|e| matches!(e, LearnEvent::Canary { .. })));

    // Noisy but truly worse challenger measurements, in slices with a
    // verdict attempt after each: no round may promote.
    let mut demoted_z = None;
    for round in 0..3 {
        report(&mut conn, "challenger", &pairs, 0.1, 6, 1000 + round * 17);
        for e in hub.learn_step() {
            assert!(
                !matches!(e, LearnEvent::Promoted { .. }),
                "losing challenger promoted in round {round}"
            );
            if let LearnEvent::Demoted { z } = e {
                demoted_z.get_or_insert(z);
            }
        }
    }
    let z = demoted_z.expect("a clearly losing challenger must be demoted");
    eprintln!("safety e2e: losing challenger demoted at z = {z:+.1}, zero promotions");
    assert_eq!(hub.registry().get("challenger").unwrap().weight, 0);
    assert_eq!(
        hub.registry().get("prod").unwrap().checkpoint_hash,
        champion_hash,
        "champion weights must survive a losing challenger"
    );
    let stats = request(&mut conn, vec![("op", Json::from("stats"))]);
    let learning = stats
        .get("stats")
        .and_then(|s| s.get("learning"))
        .expect("stats exposes learning");
    assert_eq!(learning.get("promotions").and_then(Json::as_f64), Some(0.0));
    assert!(learning.get("demotions").and_then(Json::as_f64) >= Some(1.0));

    handle.shutdown();
}
