//! Property-based tests over the whole stack: for arbitrary generated
//! kernels and arbitrary agent decisions, the pipeline never panics, the
//! legality clamp holds, and performance invariants are respected.

use proptest::prelude::*;

use neurovectorizer::{Compiler, LoopDecision};
use nvc_datasets::generator;
use nvc_frontend::{inject_pragma, parse_translation_unit, print_translation_unit, LoopPragma};
use nvc_ir::{legal_max_vf, lower_innermost_loops};
use nvc_machine::TargetConfig;
use nvc_vectorizer::{ActionSpace, VectorDecision, Vectorizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated kernel, any decision: compile-and-run is total and
    /// produces finite positive cycles.
    #[test]
    fn compile_never_panics(seed in 0u64..5000, vf_exp in 0u32..7, if_exp in 0u32..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = generator::generate_one(&mut rng, (seed % 16) as usize);
        let compiler = Compiler::default();
        let d = VectorDecision::new(1 << vf_exp, 1 << if_exp);
        let t = compiler.run_with(&k, |_| LoopDecision::Pragma(d)).unwrap();
        prop_assert!(t.total_cycles.is_finite());
        prop_assert!(t.total_cycles > 0.0);
    }

    /// The legality clamp: whatever the agent requests, the compiled
    /// decision never exceeds the dependence-analysis bound or the target
    /// maxima.
    #[test]
    fn clamp_invariant(seed in 0u64..5000, vf in 1u32..=4096, if_ in 1u32..=4096) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = generator::generate_one(&mut rng, (seed % 16) as usize);
        let tu = parse_translation_unit(&k.source).unwrap();
        let loops = lower_innermost_loops(&tu, &k.source, &k.env).unwrap();
        let target = TargetConfig::i7_8559u();
        let vz = Vectorizer::new(target.clone());
        for l in &loops {
            let c = vz.compile(&l.ir, VectorDecision::new(vf, if_));
            prop_assert!(c.decision.vf <= legal_max_vf(&l.ir));
            prop_assert!(c.decision.vf <= target.max_vf);
            prop_assert!(c.decision.if_ <= target.max_if);
            prop_assert!(c.decision.vf.is_power_of_two());
            prop_assert!(c.decision.if_.is_power_of_two());
        }
    }

    /// Work conservation: a vectorized loop never processes fewer elements
    /// than the trip count (blocks × block + remainder == trip).
    #[test]
    fn iteration_split_conserves_elements(seed in 0u64..5000, vf_exp in 0u32..7, if_exp in 0u32..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = generator::generate_one(&mut rng, (seed % 16) as usize);
        let tu = parse_translation_unit(&k.source).unwrap();
        let loops = lower_innermost_loops(&tu, &k.source, &k.env).unwrap();
        let vz = Vectorizer::new(TargetConfig::i7_8559u());
        for l in &loops {
            let c = vz.compile(&l.ir, VectorDecision::new(1 << vf_exp, 1 << if_exp));
            let covered = c.shape.blocks * c.shape.elems_per_block + c.shape.remainder_elems;
            prop_assert_eq!(covered, l.ir.trip.count());
        }
    }

    /// Printer fixpoint on arbitrary generated kernels: print ∘ parse is
    /// idempotent.
    #[test]
    fn printer_roundtrip(seed in 0u64..5000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = generator::generate_one(&mut rng, (seed % 16) as usize);
        let tu1 = parse_translation_unit(&k.source).unwrap();
        let p1 = print_translation_unit(&tu1);
        let tu2 = parse_translation_unit(&p1).unwrap();
        let p2 = print_translation_unit(&tu2);
        prop_assert_eq!(p1, p2);
    }

    /// Pragma injection commutes with compilation: injecting (vf, if) into
    /// the source and re-extracting yields the same clamped decision as
    /// passing the decision directly.
    #[test]
    fn pragma_injection_equals_direct_decision(seed in 0u64..5000, vf_exp in 0u32..7, if_exp in 0u32..5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = generator::generate_one(&mut rng, (seed % 16) as usize);
        let d = VectorDecision::new(1 << vf_exp, 1 << if_exp);

        // Direct path.
        let compiler = Compiler::default();
        let direct = compiler.run_with(&k, |_| LoopDecision::Pragma(d)).unwrap();

        // Source-injection path: inject above every innermost loop.
        let tu = parse_translation_unit(&k.source).unwrap();
        let mut loops: Vec<_> = nvc_frontend::extract_loops(&tu, &k.source)
            .into_iter()
            .filter(|l| l.is_innermost)
            .collect();
        loops.sort_by(|a, b| b.header_line.cmp(&a.header_line));
        let mut src = k.source.clone();
        for l in &loops {
            src = inject_pragma(&src, l.header_line, LoopPragma {
                vectorize_width: d.vf,
                interleave_count: d.if_,
            });
        }
        let tu2 = parse_translation_unit(&src).unwrap();
        let lowered = lower_innermost_loops(&tu2, &src, &k.env).unwrap();
        let vz = Vectorizer::new(TargetConfig::i7_8559u());
        // Each injected loop must clamp to the same decision the direct
        // path used.
        for (l, report) in lowered.iter().zip(direct.loops.iter()) {
            let clamped = nvc_vectorizer::clamp_decision(&l.ir, d, vz.target());
            prop_assert_eq!(clamped, report.decision);
        }
    }

    /// Monotonicity-of-work: doubling the trip count of a simple copy
    /// never makes it faster in total cycles.
    #[test]
    fn more_work_costs_more(n_exp in 6u32..12, vf_exp in 0u32..4) {
        let n = 1u64 << n_exp;
        let make = |n: u64| nvc_datasets::Kernel::new(
            "copy", "t",
            format!("float a[8192]; float b[8192];\nvoid f() {{ for (int i = 0; i < {n}; i++) {{ a[i] = b[i]; }} }}"),
            nvc_ir::ParamEnv::new(),
        );
        let compiler = Compiler::default();
        let d = VectorDecision::new(1 << vf_exp, 2);
        let t1 = compiler.run_with(&make(n), |_| LoopDecision::Pragma(d)).unwrap();
        let t2 = compiler.run_with(&make(n * 2), |_| LoopDecision::Pragma(d)).unwrap();
        prop_assert!(t2.total_cycles >= t1.total_cycles);
    }

    /// The action space decodes every flat index into in-range factors.
    #[test]
    fn action_space_total(idx in 0usize..35) {
        let space = ActionSpace::for_target(&TargetConfig::i7_8559u());
        let d = space.decision(idx);
        prop_assert!(d.vf <= 64 && d.if_ <= 16);
        prop_assert_eq!(space.index_of(d), Some(idx));
    }
}
